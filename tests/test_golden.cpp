// Golden-vector regression suite: locks the bit-accurate datapaths.
//
// tests/data/golden_<standard>.txt (regenerate: `alist_tool golden
// --outdir tests/data`) holds, for EVERY registered 802.11n / 802.16e /
// DMB-T / NR mode plus the shared NR rate-matched cases
// (core::golden::nr_rate_matched_cases), one canned quantised LLR frame —
// post-deposit, i.e. with NR puncturing, fillers and rate-matched
// repetition already mapped onto the codeword memory — and the expected
// hard decisions of the fixed-point and float min-sum datapaths under the
// golden config (min-sum kernel, 5 full iterations, no early termination,
// Q5.2 messages). This suite decodes each frame through
//
//   - the scalar fixed-point engine        (LayerEngineT<std::int32_t>)
//   - the SoA batched fixed-point kernel   (BatchEngine, several lanes)
//   - the chip model                       (arch::DecoderChip, natural order)
//   - the float reference engine           (LayerEngineT<double>)
//
// and asserts bit-exact agreement with the stored decisions, so ANY change
// to the quantised arithmetic — saturation, clip points, min-sum ties,
// write-back order, the LLR deposit — or to the float reference trips a
// test naming the exact mode.
#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "ldpc/arch/decoder_chip.hpp"
#include "ldpc/codes/registry.hpp"
#include "ldpc/core/batch_engine.hpp"
#include "ldpc/core/golden.hpp"
#include "ldpc/core/layer_engine.hpp"

namespace {

using namespace ldpc;
using core::golden::bits_to_hex;

struct GoldenEntry {
  std::vector<std::int32_t> raw;
  std::string fixed_hex;
  std::string float_hex;
};

const std::map<std::string, GoldenEntry>& golden_table() {
  static const std::map<std::string, GoldenEntry> table = [] {
    std::map<std::string, GoldenEntry> t;
    for (const codes::Standard standard :
         {codes::Standard::kWlan80211n, codes::Standard::kWimax80216e,
          codes::Standard::kDmbT, codes::Standard::kNr5g}) {
      const std::string path = std::string(LDPC_GOLDEN_DIR) + "/golden_" +
                               core::golden::standard_slug(standard) +
                               ".txt";
      std::ifstream in(path);
      if (!in)
        throw std::runtime_error("cannot open golden vectors: " + path);
      std::string line;
      std::string current;
      int n = 0;
      while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#') continue;
        std::istringstream ls(line);
        std::string tag;
        ls >> tag;
        if (tag == "mode") {
          // "mode <name with spaces> n <n>"
          const auto n_pos = line.rfind(" n ");
          current = line.substr(5, n_pos - 5);
          n = std::stoi(line.substr(n_pos + 3));
          t[current] = GoldenEntry{};
          t[current].raw.reserve(static_cast<std::size_t>(n));
        } else if (tag == "raw") {
          std::int32_t v;
          while (ls >> v) t[current].raw.push_back(v);
        } else if (tag == "fixed") {
          ls >> t[current].fixed_hex;
        } else if (tag == "float") {
          ls >> t[current].float_hex;
        }
      }
    }
    return t;
  }();
  return table;
}

// Decodes `entry.raw` through all four datapaths and asserts bit-exact
// agreement with the stored decisions. Shared by the registered-mode sweep
// and the NR rate-matched cases.
void check_all_datapaths(const codes::QCCode& code,
                         const GoldenEntry& entry) {
  ASSERT_EQ(entry.raw.size(), static_cast<std::size_t>(code.n()));
  const core::DecoderConfig cfg = core::golden::config();

  // Scalar fixed-point path.
  core::LayerEngine fixed_engine(cfg);
  fixed_engine.reconfigure(code);
  const auto fixed_result = fixed_engine.run(entry.raw);
  EXPECT_EQ(bits_to_hex(fixed_result.bits), entry.fixed_hex)
      << code.name() << " (scalar fixed)";
  EXPECT_EQ(fixed_result.iterations, cfg.max_iterations);

  // Batched fixed-point path: three lanes carrying the same frame (a
  // ragged, partially masked batch) must each reproduce the golden bits.
  core::BatchEngine batch(cfg);
  batch.reconfigure(code);
  constexpr int kFrames = 3;
  std::vector<std::int32_t> raw3;
  raw3.reserve(entry.raw.size() * kFrames);
  for (int f = 0; f < kFrames; ++f)
    raw3.insert(raw3.end(), entry.raw.begin(), entry.raw.end());
  std::vector<core::FixedDecodeResult> results(kFrames);
  batch.decode_raw(raw3, {}, results);
  for (int f = 0; f < kFrames; ++f)
    EXPECT_EQ(bits_to_hex(results[static_cast<std::size_t>(f)].bits),
              entry.fixed_hex)
        << code.name() << " (batched fixed, lane " << f << ")";

  // Chip model pinned to the natural layer order: layered decoding is
  // order-dependent and the generator ran the natural schedule, so the
  // chip's optimised order is overridden for the comparison.
  arch::DecoderChip chip(arch::ChipDimensions::universal(), cfg);
  chip.configure(code);
  std::vector<int> natural(static_cast<std::size_t>(code.block_rows()));
  for (int l = 0; l < code.block_rows(); ++l)
    natural[static_cast<std::size_t>(l)] = l;
  chip.set_layer_order(natural);
  std::vector<double> llr(entry.raw.size());
  for (std::size_t i = 0; i < llr.size(); ++i)
    llr[i] = entry.raw[i] * cfg.format.lsb();
  // The chip takes transmitted-length LLRs and runs the shared deposit.
  // Reconstruct a transmitted vector whose deposit reproduces the stored
  // frame exactly: the first occurrence of each sendable position carries
  // the dequantised raw value (quantisation is idempotent on grid points,
  // and the deposit's zero-exclusion never stored a raw 0 for a sent
  // bit), wraparound repeats carry 0.0 (they accumulate onto the first),
  // and punctured / unsent / filler positions are reproduced by the
  // deposit itself.
  const int sendable = code.sendable_bits();
  std::vector<double> tx(static_cast<std::size_t>(code.transmitted_bits()),
                         0.0);
  for (int i = 0; i < std::min<int>(code.transmitted_bits(), sendable); ++i)
    tx[static_cast<std::size_t>(i)] =
        llr[static_cast<std::size_t>(code.tx_bit_index(i))];
  const auto chip_result = chip.decode(tx);
  EXPECT_EQ(bits_to_hex(chip_result.functional.bits), entry.fixed_hex)
      << code.name() << " (chip)";

  // Float reference path (min-sum arithmetic: compare/add only, so the
  // stored decisions are portable across libm implementations).
  core::FloatLayerEngine float_engine(cfg);
  float_engine.reconfigure(code);
  const auto float_result = float_engine.run(llr);
  EXPECT_EQ(bits_to_hex(float_result.bits), entry.float_hex)
      << code.name() << " (float)";
}

class GoldenVectors : public ::testing::TestWithParam<codes::CodeId> {};

TEST_P(GoldenVectors, AllDatapathsMatchStoredDecisions) {
  const codes::CodeId id = GetParam();
  const auto it = golden_table().find(to_string(id));
  ASSERT_NE(it, golden_table().end())
      << "mode " << to_string(id) << " missing from golden_"
      << core::golden::standard_slug(id.standard)
      << ".txt — regenerate with: alist_tool golden --outdir tests/data";
  const auto code = codes::make_code(id);
  check_all_datapaths(code, it->second);
}

INSTANTIATE_TEST_SUITE_P(AllModes, GoldenVectors,
                         ::testing::ValuesIn(codes::all_modes()),
                         [](const auto& info) {
                           std::string n = to_string(info.param);
                           for (char& c : n)
                             if (!isalnum(static_cast<unsigned char>(c)))
                               c = '_';
                           return n;
                         });

// The NR rate-matched cases (E != sendable, fillers): same four-datapath
// lock over codes built with an explicit transmission length.
class GoldenNrRateMatched
    : public ::testing::TestWithParam<core::golden::NrRateMatchedCase> {};

TEST_P(GoldenNrRateMatched, AllDatapathsMatchStoredDecisions) {
  const auto& c = GetParam();
  const auto code =
      codes::make_nr_code(c.rate, c.z, c.transmitted_bits, c.filler_bits);
  const auto it = golden_table().find(code.name());
  ASSERT_NE(it, golden_table().end())
      << "case " << code.name() << " missing from golden_nr.txt — "
         "regenerate with: alist_tool golden --outdir tests/data";
  check_all_datapaths(code, it->second);
}

INSTANTIATE_TEST_SUITE_P(
    RateMatched, GoldenNrRateMatched,
    ::testing::ValuesIn(core::golden::nr_rate_matched_cases()),
    [](const auto& info) {
      return std::string(info.param.rate == codes::Rate::kR13 ? "BG1"
                                                              : "BG2") +
             "_z" + std::to_string(info.param.z) + "_E" +
             std::to_string(info.param.transmitted_bits) + "_F" +
             std::to_string(info.param.filler_bits);
    });

// Every entry in the data files must correspond to a registered mode or a
// shared rate-matched case — a stale file (mode renamed/removed) fails
// loudly instead of silently shrinking coverage.
TEST(GoldenVectors, FilesCoverExactlyTheRegistry) {
  const std::size_t expected = codes::all_modes().size() +
                               core::golden::nr_rate_matched_cases().size();
  EXPECT_EQ(golden_table().size(), expected);
  for (const auto& [name, entry] : golden_table()) {
    EXPECT_FALSE(entry.raw.empty()) << name;
    EXPECT_EQ(entry.fixed_hex.size(), (entry.raw.size() + 3) / 4) << name;
    EXPECT_EQ(entry.float_hex.size(), (entry.raw.size() + 3) / 4) << name;
  }
}

}  // namespace
