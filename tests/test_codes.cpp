#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "ldpc/codes/base_matrix.hpp"
#include "ldpc/codes/qc_code.hpp"
#include "ldpc/codes/registry.hpp"

namespace {

using namespace ldpc::codes;

TEST(BaseMatrix, ConstructionAndAccess) {
  BaseMatrix b(2, 3, {0, -1, 5, 2, 3, -1});
  EXPECT_EQ(b.rows(), 2);
  EXPECT_EQ(b.cols(), 3);
  EXPECT_EQ(b.at(0, 2), 5);
  EXPECT_TRUE(b.is_zero(0, 1));
  EXPECT_EQ(b.row_degree(0), 2);
  EXPECT_EQ(b.col_degree(0), 2);
  EXPECT_EQ(b.nonzero_blocks(), 4);
  EXPECT_EQ(b.max_shift(), 5);
}

TEST(BaseMatrix, ShapeMismatchThrows) {
  EXPECT_THROW(BaseMatrix(2, 2, {0, 1, 2}), std::invalid_argument);
  EXPECT_THROW(BaseMatrix(1, 1, {-2}), std::invalid_argument);
}

TEST(BaseMatrix, OutOfRangeThrows) {
  BaseMatrix b(1, 1, {0});
  EXPECT_THROW(b.at(1, 0), std::out_of_range);
  EXPECT_THROW(b.set(0, 2, 0), std::out_of_range);
}

TEST(BaseMatrix, FloorScalingMapsShifts) {
  BaseMatrix b(1, 2, {95, -1});
  const BaseMatrix s = scale_base_matrix(b, 96, 24, ShiftScaling::kFloor);
  EXPECT_EQ(s.at(0, 0), 95 * 24 / 96);
  EXPECT_TRUE(s.is_zero(0, 1));
}

TEST(BaseMatrix, ModuloScalingMapsShifts) {
  BaseMatrix b(1, 1, {50});
  const BaseMatrix s = scale_base_matrix(b, 96, 24, ShiftScaling::kModulo);
  EXPECT_EQ(s.at(0, 0), 50 % 24);
}

TEST(BaseMatrix, ScalingPreservesZeroShift) {
  BaseMatrix b(1, 1, {0});
  for (auto rule : {ShiftScaling::kFloor, ShiftScaling::kModulo})
    EXPECT_EQ(scale_base_matrix(b, 96, 28, rule).at(0, 0), 0);
}

TEST(QCCode, ExpansionDimensions) {
  // 2x4 base, z=3.
  BaseMatrix b(2, 4, {0, 1, -1, 0, 2, -1, 0, 0});
  QCCode code(b, 3, "toy");
  EXPECT_EQ(code.n(), 12);
  EXPECT_EQ(code.m(), 6);
  EXPECT_EQ(code.k_info(), 6);
  EXPECT_EQ(code.z(), 3);
  EXPECT_EQ(code.nonzero_blocks(), 6);
  EXPECT_EQ(code.edges(), 18);
  EXPECT_DOUBLE_EQ(code.rate(), 0.5);
  EXPECT_EQ(code.layers().size(), 2u);
  EXPECT_EQ(code.layers()[0].size(), 3u);
}

TEST(QCCode, ShiftedIdentityAdjacency) {
  // Single block with shift 1 and z=4: check t connects var (t+1) mod 4.
  // A one-block code has empty-column issues only if shift were invalid;
  // here every column has degree 1.
  BaseMatrix b(1, 1, {1});
  QCCode code(b, 4);
  for (int t = 0; t < 4; ++t) {
    const auto vars = code.check_vars(t);
    ASSERT_EQ(vars.size(), 1u);
    EXPECT_EQ(vars[0], (t + 1) % 4);
  }
}

TEST(QCCode, ShiftTooLargeThrows) {
  BaseMatrix b(1, 1, {4});
  EXPECT_THROW(QCCode(b, 4), std::invalid_argument);
}

TEST(QCCode, EmptyRowOrColumnThrows) {
  BaseMatrix empty_row(2, 2, {0, 0, -1, -1});
  EXPECT_THROW(QCCode(empty_row, 3), std::invalid_argument);
  BaseMatrix empty_col(2, 2, {0, -1, 0, -1});
  EXPECT_THROW(QCCode(empty_col, 3), std::invalid_argument);
}

TEST(QCCode, VarAdjacencyIsTransposeOfCheckAdjacency) {
  QCCode code = make_code({Standard::kWimax80216e, Rate::kR12, 24});
  for (int r = 0; r < code.m(); r += 37) {
    for (std::int32_t v : code.check_vars(r)) {
      const auto checks = code.var_checks(v);
      EXPECT_NE(std::find(checks.begin(), checks.end(), r), checks.end());
    }
  }
  // Total degree equality.
  long deg_sum = 0;
  for (int v = 0; v < code.n(); ++v) deg_sum += code.var_degree(v);
  EXPECT_EQ(deg_sum, code.edges());
}

TEST(QCCode, SyndromeOfAllZeroIsZero) {
  QCCode code = make_code({Standard::kWlan80211n, Rate::kR12, 27});
  std::vector<std::uint8_t> zero(static_cast<std::size_t>(code.n()), 0);
  EXPECT_TRUE(code.is_codeword(zero));
  zero[5] = 1;  // single bit flip breaks var_degree(5) checks
  EXPECT_EQ(code.syndrome_weight(zero), code.var_degree(5));
}

TEST(Registry, SupportedZCounts) {
  EXPECT_EQ(supported_z(Standard::kWimax80216e).size(), 19u);  // paper: 19 modes
  EXPECT_EQ(supported_z(Standard::kWlan80211n),
            (std::vector<int>{27, 54, 81}));
  EXPECT_EQ(supported_z(Standard::kDmbT), std::vector<int>{127});
}

TEST(Registry, WimaxBlockLengths) {
  // 802.16e frame lengths 576..2304 in steps of 96 bits.
  for (int z : supported_z(Standard::kWimax80216e)) {
    QCCode code = make_code({Standard::kWimax80216e, Rate::kR12, z});
    EXPECT_EQ(code.n(), 24 * z);
  }
  EXPECT_EQ(make_code_by_length(Standard::kWimax80216e, Rate::kR12, 2304).z(),
            96);
  EXPECT_EQ(make_code_by_length(Standard::kWlan80211n, Rate::kR56, 648).z(),
            27);
}

TEST(Registry, UnsupportedCombinationsThrow) {
  EXPECT_THROW(make_code({Standard::kWlan80211n, Rate::kR12, 30}),
               std::invalid_argument);
  EXPECT_THROW(make_code({Standard::kWlan80211n, Rate::kR23A, 27}),
               std::invalid_argument);
  EXPECT_THROW(make_code_by_length(Standard::kWimax80216e, Rate::kR12, 1000),
               std::invalid_argument);
}

TEST(Registry, AllModesEnumeration) {
  const auto modes = all_modes();
  // 4*3 (WLAN) + 6*19 (WiMax) + 4*1 (DMB-T) + 2*10 (NR BG1/BG2).
  EXPECT_EQ(modes.size(), 12u + 114u + 4u + 20u);
  std::set<std::string> names;
  for (const auto& id : modes) names.insert(to_string(id));
  EXPECT_EQ(names.size(), modes.size());  // all distinct
}

TEST(Registry, ToStringRoundtrips) {
  EXPECT_EQ(to_string(Standard::kWimax80216e), "802.16e");
  EXPECT_EQ(to_string(Rate::kR23A), "2/3A");
  EXPECT_EQ(to_string(CodeId{Standard::kWlan80211n, Rate::kR34, 54}),
            "802.11n R3/4 z=54");
  EXPECT_NEAR(rate_value(Rate::kR56), 5.0 / 6.0, 1e-12);
}

TEST(Registry, Table1ParametersMatchPaper) {
  // Paper Table 1: WLAN j 4-12 k 24 z 27-81; WiMax j 4-12 k 24 z 24-96;
  // DMB-T j 24-48 k 60 z 127.
  for (Rate r : supported_rates(Standard::kWlan80211n)) {
    const BaseMatrix b = wlan_base_matrix(r);
    EXPECT_EQ(b.cols(), 24);
    EXPECT_GE(b.rows(), 4);
    EXPECT_LE(b.rows(), 12);
  }
  for (Rate r : supported_rates(Standard::kWimax80216e)) {
    const BaseMatrix b = wimax_base_matrix(r);
    EXPECT_EQ(b.cols(), 24);
    EXPECT_GE(b.rows(), 4);
    EXPECT_LE(b.rows(), 12);
  }
  for (Rate r : supported_rates(Standard::kDmbT)) {
    const BaseMatrix b = dmbt_base_matrix(r);
    EXPECT_EQ(b.cols(), 60);
    EXPECT_GE(b.rows(), 12);
    EXPECT_LE(b.rows(), 48);
  }
}

TEST(Registry, DmbtIsDeterministic) {
  EXPECT_EQ(dmbt_base_matrix(Rate::kR35), dmbt_base_matrix(Rate::kR35));
}

// ---- 5G NR: lifting sets, mod-z scaling, transmission scheme --------------

TEST(NrRegistry, LiftingSizesAreTheEightSets) {
  const auto zs = nr_lifting_sizes();
  EXPECT_EQ(zs.size(), 51u);  // TS 38.212 Table 5.3.2-1
  EXPECT_EQ(zs.front(), 2);
  EXPECT_EQ(zs.back(), 384);
  for (const int z : zs) {
    int a = z;
    while (a % 2 == 0) a /= 2;
    // a * 2^s with a odd in {1(->2), 3, 5, 7, 9, 11, 13, 15}.
    EXPECT_TRUE(a == 1 || (a >= 3 && a <= 15)) << z;
  }
  // Every registered z is a lifting size.
  for (const int z : supported_z(Standard::kNr5g))
    EXPECT_NE(std::find(zs.begin(), zs.end(), z), zs.end()) << z;
  EXPECT_THROW(make_nr_code(Rate::kR13, 17), std::invalid_argument);
  EXPECT_THROW(make_nr_code(Rate::kR12, 96), std::invalid_argument);
}

TEST(NrRegistry, BaseGraphShapesMatchTheStandard) {
  const BaseMatrix bg1 = nr_base_matrix(Rate::kR13);
  EXPECT_EQ(bg1.rows(), 46);
  EXPECT_EQ(bg1.cols(), 68);
  const BaseMatrix bg2 = nr_base_matrix(Rate::kR15);
  EXPECT_EQ(bg2.rows(), 42);
  EXPECT_EQ(bg2.cols(), 52);
  // Deterministic generation (golden vectors depend on it).
  EXPECT_EQ(nr_base_matrix(Rate::kR13), nr_base_matrix(Rate::kR13));
  // Dense always-punctured columns: 0 and 1 connect to all four core rows
  // and dominate the column-degree profile.
  for (int c = 0; c < 2; ++c) {
    EXPECT_GE(bg1.col_degree(c), 20) << c;
    for (int r = 0; r < 4; ++r) EXPECT_FALSE(bg1.is_zero(r, c));
  }
}

TEST(NrRegistry, ShiftsScaleByVModZ) {
  const BaseMatrix base = nr_base_matrix(Rate::kR15);
  for (const int z : {2, 36, 96}) {
    const QCCode code = make_code({Standard::kNr5g, Rate::kR15, z});
    for (int r = 0; r < base.rows(); ++r)
      for (int c = 0; c < base.cols(); ++c) {
        ASSERT_EQ(base.is_zero(r, c), code.base().is_zero(r, c));
        if (!base.is_zero(r, c))
          ASSERT_EQ(code.base().at(r, c), base.at(r, c) % z)
              << r << "," << c << " z=" << z;
      }
  }
}

TEST(TransmissionScheme, DegenerateForClassicStandards) {
  const QCCode wimax = make_code({Standard::kWimax80216e, Rate::kR12, 96});
  EXPECT_TRUE(wimax.scheme().is_degenerate());
  EXPECT_EQ(wimax.transmitted_bits(), wimax.n());
  EXPECT_EQ(wimax.payload_bits(), wimax.k_info());
  EXPECT_EQ(wimax.sendable_bits(), wimax.n());
  EXPECT_DOUBLE_EQ(wimax.effective_rate(), wimax.rate());
  for (int i : {0, 17, wimax.n() - 1}) EXPECT_EQ(wimax.tx_bit_index(i), i);
}

TEST(TransmissionScheme, TxBitIndexSkipsPuncturedAndFillers) {
  // BG2 z=2: k_info = 20, punctured prefix = 4 bits, F = 4 fillers at
  // [16, 20), sendable = 104 - 4 - 4 = 96.
  const QCCode code = make_nr_code(Rate::kR15, 2, 0, 4);
  EXPECT_EQ(code.payload_bits(), 16);
  EXPECT_EQ(code.sendable_bits(), 96);
  EXPECT_EQ(code.transmitted_bits(), 96);
  EXPECT_EQ(code.tx_bit_index(0), 4);     // first bit after the punctured prefix
  EXPECT_EQ(code.tx_bit_index(11), 15);   // last payload bit
  EXPECT_EQ(code.tx_bit_index(12), 20);   // filler range [16, 20) skipped
  EXPECT_EQ(code.tx_bit_index(95), 103);  // last parity bit
}

TEST(TransmissionScheme, ExtractTransmittedWrapsAround) {
  // E > sendable: the circular buffer repeats from the start.
  const QCCode code = make_nr_code(Rate::kR15, 2, 150);
  EXPECT_EQ(code.sendable_bits(), 100);
  EXPECT_EQ(code.transmitted_bits(), 150);
  std::vector<std::uint8_t> cw(static_cast<std::size_t>(code.n()));
  for (std::size_t i = 0; i < cw.size(); ++i)
    cw[i] = static_cast<std::uint8_t>(i % 2);
  std::vector<std::uint8_t> tx(150);
  code.extract_transmitted(cw, tx);
  for (int i = 0; i < 150; ++i)
    ASSERT_EQ(tx[static_cast<std::size_t>(i)],
              cw[static_cast<std::size_t>(code.tx_bit_index(i % 100))]) << i;
}

TEST(TransmissionScheme, SetSchemeValidates) {
  QCCode code = make_code({Standard::kWimax80216e, Rate::kR12, 24});
  // Punctured columns beyond the information part (rate 1/2: 12 of 24).
  EXPECT_THROW(code.set_scheme({.punctured_block_cols = 13}),
               std::invalid_argument);
  // Fillers overlapping the punctured prefix.
  EXPECT_THROW(code.set_scheme({.punctured_block_cols = 12,
                                .filler_bits = 1}),
               std::invalid_argument);
  EXPECT_THROW(code.set_scheme({.transmitted_bits = -1}),
               std::invalid_argument);
  // A valid scheme sticks.
  code.set_scheme({.punctured_block_cols = 1, .transmitted_bits = 400});
  EXPECT_EQ(code.transmitted_bits(), 400);
  EXPECT_FALSE(code.scheme().is_degenerate());
}

// ---- property sweep over every registered mode ---------------------------

class AllModesTest : public ::testing::TestWithParam<CodeId> {};

TEST_P(AllModesTest, ExpandsToConsistentCode) {
  const QCCode code = make_code(GetParam());
  EXPECT_GT(code.n(), 0);
  EXPECT_GT(code.k_info(), 0);
  EXPECT_EQ(code.n(), code.block_cols() * code.z());
  EXPECT_EQ(code.m(), code.block_rows() * code.z());
  // Every layer is non-empty and references valid columns/shifts.
  for (const auto& layer : code.layers()) {
    EXPECT_FALSE(layer.empty());
    for (const auto& e : layer) {
      EXPECT_GE(e.block_col, 0);
      EXPECT_LT(e.block_col, code.block_cols());
      EXPECT_GE(e.shift, 0);
      EXPECT_LT(e.shift, code.z());
    }
  }
  // Effective (channel-facing) rate matches the nominal rate: identical
  // to k/n for the full-codeword standards, the post-puncturing mother
  // rate for NR.
  EXPECT_NEAR(code.effective_rate(), rate_value(GetParam().rate), 1e-9);
}

TEST_P(AllModesTest, CheckRowsWithinLayerShareDegree) {
  const QCCode code = make_code(GetParam());
  const int z = code.z();
  for (int l = 0; l < code.block_rows(); ++l) {
    const int d0 = code.check_degree(l * z);
    for (int t = 1; t < z; t += std::max(1, z / 7))
      EXPECT_EQ(code.check_degree(l * z + t), d0);
    EXPECT_EQ(d0, static_cast<int>(code.layers()[l].size()));
  }
}

INSTANTIATE_TEST_SUITE_P(Registry, AllModesTest,
                         ::testing::ValuesIn(all_modes()),
                         [](const auto& info) {
                           std::string n = to_string(info.param);
                           for (char& c : n)
                             if (!isalnum(static_cast<unsigned char>(c)))
                               c = '_';
                           return n;
                         });

}  // namespace
