#include <gtest/gtest.h>

#include <cmath>

#include "ldpc/baseline/boxplus.hpp"
#include "ldpc/channel/channel.hpp"
#include "ldpc/codes/registry.hpp"
#include "ldpc/core/correction_lut.hpp"
#include "ldpc/core/decoder.hpp"
#include "ldpc/core/early_termination.hpp"
#include "ldpc/core/siso.hpp"
#include "ldpc/enc/encoder.hpp"
#include "ldpc/sim/simulator.hpp"

namespace {

using namespace ldpc;
using codes::Rate;
using codes::Standard;
using core::CorrectionLut;
using fixed::QFormat;

constexpr QFormat kFmt{8, 2};

TEST(CorrectionLut, FPlusMatchesAnalyticWithinHalfLsb) {
  const CorrectionLut lut(CorrectionLut::Kind::kFPlus, kFmt);
  for (std::int32_t r = 0; r < 40; ++r) {
    const double x = kFmt.to_double(r);
    const double exact = std::log1p(std::exp(-x));
    EXPECT_NEAR(kFmt.to_double(lut.lookup(r)), exact, kFmt.lsb() / 2 + 1e-9)
        << "r=" << r;
  }
}

TEST(CorrectionLut, FPlusAtZeroIsLog2) {
  const CorrectionLut lut(CorrectionLut::Kind::kFPlus, kFmt);
  EXPECT_EQ(lut.lookup(0), kFmt.quantize(std::log(2.0)));
}

TEST(CorrectionLut, GMinusClampsAtDivergence) {
  const CorrectionLut lut(CorrectionLut::Kind::kGMinus, kFmt);
  EXPECT_EQ(lut.lookup(0), lut.out_max());  // x -> 0 diverges, 3-bit clamp
  // Monotone non-increasing.
  for (std::int32_t r = 1; r < 30; ++r)
    EXPECT_LE(lut.lookup(r), lut.lookup(r - 1)) << r;
}

TEST(CorrectionLut, ThreeBitOutputRange) {
  for (auto kind :
       {CorrectionLut::Kind::kFPlus, CorrectionLut::Kind::kGMinus}) {
    const CorrectionLut lut(kind, kFmt, 3);
    EXPECT_EQ(lut.out_max(), 7);
    for (std::int32_t r = 0; r < 200; ++r) {
      EXPECT_GE(lut.lookup(r), 0);
      EXPECT_LE(lut.lookup(r), 7);
    }
  }
}

TEST(CorrectionLut, LargeInputsGiveZero) {
  const CorrectionLut lut(CorrectionLut::Kind::kFPlus, kFmt);
  EXPECT_EQ(lut.lookup(1000), 0);
  EXPECT_EQ(lut.lookup(kFmt.raw_max()), 0);
  // Negative raw treated as zero distance (defensive clamp).
  EXPECT_EQ(lut.lookup(-3), lut.lookup(0));
}

TEST(CorrectionLut, TableIsCompact) {
  const CorrectionLut lut(CorrectionLut::Kind::kFPlus, kFmt);
  // The paper calls these "low-complexity 3-bit LUTs": a handful of
  // entries, not hundreds.
  EXPECT_LE(lut.table_size(), 32u);
  EXPECT_GE(lut.table_size(), 4u);
}

TEST(CorrectionLut, KnownAnswerTable) {
  // Golden contents of the paper-default 3-bit LUTs (Q5.2 input LSBs).
  // Locking these guards the bit-exactness of every decoder result.
  const CorrectionLut f(CorrectionLut::Kind::kFPlus, kFmt);
  EXPECT_EQ(f.table_size(), 9u);
  const int f_expect[] = {3, 2, 2, 2, 1, 1, 1, 1, 1, 0, 0};
  for (int r = 0; r < 11; ++r) EXPECT_EQ(f.lookup(r), f_expect[r]) << r;

  const CorrectionLut g(CorrectionLut::Kind::kGMinus, kFmt);
  EXPECT_EQ(g.table_size(), 9u);
  const int g_expect[] = {7, 6, 4, 3, 2, 1, 1, 1, 1, 0, 0};
  for (int r = 0; r < 11; ++r) EXPECT_EQ(g.lookup(r), g_expect[r]) << r;
}

// ---- f/g datapath ops -----------------------------------------------------

class FgOps : public ::testing::Test {
 protected:
  CorrectionLut flut_{CorrectionLut::Kind::kFPlus, kFmt};
  CorrectionLut glut_{CorrectionLut::Kind::kGMinus, kFmt};
};

TEST_F(FgOps, FMatchesFloatBoxplusWithinQuantisation) {
  for (double a = -8.0; a <= 8.0; a += 0.731)
    for (double b = -8.0; b <= 8.0; b += 0.917) {
      const std::int32_t fa = kFmt.quantize(a);
      const std::int32_t fb = kFmt.quantize(b);
      const double got = kFmt.to_double(core::f_op(fa, fb, flut_, kFmt));
      const double want = baseline::boxplus(kFmt.to_double(fa),
                                            kFmt.to_double(fb));
      // 3-bit LUT + rounding: allow a couple of LSBs of error.
      EXPECT_NEAR(got, want, 2.5 * kFmt.lsb()) << a << " " << b;
    }
}

TEST_F(FgOps, FIsCommutative) {
  for (std::int32_t a = -100; a <= 100; a += 17)
    for (std::int32_t b = -100; b <= 100; b += 23)
      EXPECT_EQ(core::f_op(a, b, flut_, kFmt),
                core::f_op(b, a, flut_, kFmt));
}

TEST_F(FgOps, FWithZeroIsZero) {
  // A zero (erasure) input forces the combined message to zero.
  for (std::int32_t a : {-100, -5, 3, 127})
    EXPECT_EQ(core::f_op(a, 0, flut_, kFmt), 0);
}

TEST_F(FgOps, FMagnitudeBoundedByMin) {
  for (std::int32_t a = -127; a <= 127; a += 13)
    for (std::int32_t b = -127; b <= 127; b += 19)
      EXPECT_LE(kFmt.abs(core::f_op(a, b, flut_, kFmt)),
                std::min(kFmt.abs(a), kFmt.abs(b)));
}

TEST_F(FgOps, FSignIsXorOfSigns) {
  EXPECT_GE(core::f_op(10, 20, flut_, kFmt), 0);
  EXPECT_GE(core::f_op(-10, -20, flut_, kFmt), 0);
  EXPECT_LE(core::f_op(-10, 20, flut_, kFmt), 0);
  EXPECT_LE(core::f_op(10, -20, flut_, kFmt), 0);
}

TEST_F(FgOps, GDivergentPointBoundedByLutClamp) {
  // |s| == |b|: true boxminus diverges; the 3-bit LUT bounds the result to
  // min + out_max - phi-(|s|+|b|) instead of full-scale saturation.
  const std::int32_t got = core::g_op(8, 8, glut_, kFmt);
  EXPECT_EQ(got, 8 + glut_.out_max() - glut_.lookup(16));
  EXPECT_EQ(core::g_op(8, -8, glut_, kFmt), -got);
  EXPECT_LT(got, kFmt.raw_max());
}

TEST_F(FgOps, GApproximatelyInvertsF) {
  // g(f(a,b), b) ~= a when |a| is clearly below |b| (away from the
  // divergence the inversion is well conditioned).
  int close = 0, total = 0;
  for (std::int32_t a = -60; a <= 60; a += 11)
    for (std::int32_t b = -120; b <= 120; b += 17) {
      if (kFmt.abs(a) + 8 >= kFmt.abs(b)) continue;
      if (a == 0 || b == 0) continue;
      const std::int32_t s = core::f_op(a, b, flut_, kFmt);
      const std::int32_t back = core::g_op(s, b, glut_, kFmt);
      ++total;
      if (std::abs(back - a) <= 6) ++close;  // within 1.5 in real value
    }
  ASSERT_GT(total, 50);
  EXPECT_GT(static_cast<double>(close) / total, 0.9);
}

// ---- SISO cores ------------------------------------------------------------

TEST(Siso, R2AndR4AreBitIdentical) {
  core::SisoR2 r2(kFmt);
  core::SisoR4 r4(kFmt);
  util::Xoshiro256 rng(3);
  for (int trial = 0; trial < 200; ++trial) {
    const int d = 2 + static_cast<int>(rng.bounded(18));
    std::vector<std::int32_t> lam(d), out2(d), out4(d);
    for (auto& x : lam)
      x = static_cast<std::int32_t>(rng.bounded(255)) - 127;
    const auto s2 = r2.process(lam, out2);
    const auto s4 = r4.process(lam, out4);
    EXPECT_EQ(out2, out4) << "d=" << d;
    EXPECT_EQ(s2.row_sum, s4.row_sum);
  }
}

TEST(Siso, R4HalvesCycles) {
  core::SisoR2 r2(kFmt);
  core::SisoR4 r4(kFmt);
  std::vector<std::int32_t> lam(10, 5), out(10);
  EXPECT_EQ(r2.process(lam, out).cycles, 20);  // 2*d
  EXPECT_EQ(r4.process(lam, out).cycles, 10);  // ~d
  // Odd degree.
  std::vector<std::int32_t> lam7(7, 5), out7(7);
  EXPECT_EQ(r2.process(lam7, out7).cycles, 14);
  EXPECT_EQ(r4.process(lam7, out7).cycles, 8);  // ceil(7/2)+ceil(7/2)=4+4
}

TEST(Siso, RowSumIsFoldOfInputs) {
  core::SisoR2 r2(kFmt);
  std::vector<std::int32_t> lam{20, -12, 40};
  std::vector<std::int32_t> out(3);
  const auto stats = r2.process(lam, out);
  const auto& flut = r2.f_lut();
  std::int32_t s = core::f_op(core::f_op(20, -12, flut, kFmt), 40, flut,
                              kFmt);
  EXPECT_EQ(stats.row_sum, s);
}

TEST(Siso, SizeMismatchThrows) {
  core::SisoR2 r2(kFmt);
  std::vector<std::int32_t> lam(4), out(3);
  EXPECT_THROW(r2.process(lam, out), std::invalid_argument);
}

TEST(Siso, EmptyRowIsNoop) {
  core::SisoR2 r2(kFmt);
  core::SisoR4 r4(kFmt);
  EXPECT_EQ(r2.process({}, {}).cycles, 0);
  EXPECT_EQ(r4.process({}, {}).cycles, 0);
}

TEST(Siso, SumSubtractArchProcessesRows) {
  core::SisoR2 ss(kFmt, core::CnuArch::kSumSubtract);
  core::SisoR2 fb(kFmt, core::CnuArch::kForwardBackward);
  // Strong, well-separated inputs: both architectures agree closely.
  std::vector<std::int32_t> lam{100, -80, 120, -90};
  std::vector<std::int32_t> out_ss(4), out_fb(4);
  EXPECT_EQ(ss.process(lam, out_ss).cycles, 8);
  fb.process(lam, out_fb);
  for (int e = 0; e < 4; ++e) {
    // Same sign; magnitudes within a few LSBs.
    EXPECT_EQ(out_ss[e] < 0, out_fb[e] < 0) << e;
    EXPECT_NEAR(out_ss[e], out_fb[e], 8) << e;
  }
}

TEST(Siso, SumSubtractWeakestEdgeIsCapped) {
  // The information-theoretic limit of the paper's Eq. (1) division: the
  // row-minimum edge's extrinsic cannot exceed its own magnitude plus the
  // LUT clamp, whereas forward/backward recovers the true (large) value.
  core::SisoR2 ss(kFmt, core::CnuArch::kSumSubtract);
  core::SisoR2 fb(kFmt, core::CnuArch::kForwardBackward);
  std::vector<std::int32_t> lam{4, 100, 100, 100};
  std::vector<std::int32_t> out_ss(4), out_fb(4);
  ss.process(lam, out_ss);
  fb.process(lam, out_fb);
  EXPECT_LE(out_ss[0], 4 + ss.g_lut().out_max());
  EXPECT_GT(out_fb[0], 50);  // true fold of three strong messages
}

TEST(Siso, ArchNamesAreDescriptive) {
  EXPECT_EQ(to_string(core::CnuArch::kForwardBackward), "forward-backward");
  EXPECT_EQ(to_string(core::CnuArch::kSumSubtract), "sum-subtract");
}

TEST(Siso, DegreeOneRowGivesZeroExtrinsic) {
  core::SisoR2 r2(kFmt);
  std::vector<std::int32_t> lam{42}, out(1);
  r2.process(lam, out);
  EXPECT_EQ(out[0], 0);
}

// ---- early termination -----------------------------------------------------

TEST(EarlyTermination, DisabledNeverFires) {
  core::EarlyTermination et;
  std::vector<std::int32_t> app(16, 100);
  EXPECT_FALSE(et.update(app));
  EXPECT_FALSE(et.update(app));
}

TEST(EarlyTermination, RequiresTwoStableIterations) {
  core::EarlyTermination et({.enabled = true, .threshold_raw = 8});
  std::vector<std::int32_t> app(16, 100);
  EXPECT_FALSE(et.update(app));  // first iteration: no history yet
  EXPECT_TRUE(et.update(app));   // stable + above threshold
}

TEST(EarlyTermination, FlippedBitBlocksStop) {
  core::EarlyTermination et({.enabled = true, .threshold_raw = 8});
  std::vector<std::int32_t> app(16, 100);
  et.update(app);
  app[3] = -100;  // hard decision changed
  EXPECT_FALSE(et.update(app));
  EXPECT_TRUE(et.update(app));  // stable again after one more iteration
}

TEST(EarlyTermination, LowConfidenceBlocksStop) {
  core::EarlyTermination et({.enabled = true, .threshold_raw = 8});
  std::vector<std::int32_t> app(16, 100);
  app[7] = 5;  // |LLR| below threshold, hard decisions stable
  et.update(app);
  EXPECT_FALSE(et.update(app));
  app[7] = 9;  // now above threshold (strictly greater)
  EXPECT_TRUE(et.update(app));
}

TEST(EarlyTermination, ThresholdIsStrict) {
  core::EarlyTermination et({.enabled = true, .threshold_raw = 8});
  std::vector<std::int32_t> app(4, 8);  // exactly at threshold
  et.update(app);
  EXPECT_FALSE(et.update(app));
}

TEST(EarlyTermination, ResetClearsHistory) {
  core::EarlyTermination et({.enabled = true, .threshold_raw = 8});
  std::vector<std::int32_t> app(16, 100);
  et.update(app);
  et.reset();
  EXPECT_FALSE(et.update(app));  // needs a fresh pair of iterations
  EXPECT_TRUE(et.update(app));
}

// ---- the reconfigurable decoder ---------------------------------------------

struct FixedChain {
  codes::QCCode code;
  std::unique_ptr<enc::Encoder> encoder;
  util::Xoshiro256 rng;

  explicit FixedChain(const codes::CodeId& id, std::uint64_t seed = 1)
      : code(codes::make_code(id)), encoder(enc::make_encoder(code)),
        rng(seed) {}

  /// One encode -> transmit -> AWGN -> demap frame. The LLR vector has
  /// the code's transmitted length (n for classic standards; E with
  /// puncturing/fillers applied for NR).
  std::pair<std::vector<std::uint8_t>, std::vector<double>> frame(
      double ebn0_db) {
    std::vector<std::uint8_t> info(
        static_cast<std::size_t>(code.payload_bits()));
    enc::random_bits(rng, info);
    auto cw = encoder->encode(info);
    const double sigma = channel::ebn0_to_sigma(
        ebn0_db, code.effective_rate(), channel::Modulation::kBpsk);
    auto llr = sim::transmit_llrs(code, cw, channel::Modulation::kBpsk,
                                  sigma, rng);
    return {std::move(cw), std::move(llr)};
  }
};

TEST(Decoder, DecodesCleanFrame) {
  FixedChain chain({Standard::kWimax80216e, Rate::kR12, 24});
  core::ReconfigurableDecoder dec(chain.code, {.stop_on_codeword = true});
  auto [cw, llr] = chain.frame(15.0);
  const auto res = dec.decode(llr);
  EXPECT_TRUE(res.converged);
  EXPECT_EQ(res.bits, cw);
  EXPECT_EQ(res.iterations, 1);
  EXPECT_GT(res.datapath_cycles, 0);
}

TEST(Decoder, CorrectsNoisyFramesAtModerateSnr) {
  FixedChain chain({Standard::kWimax80216e, Rate::kR12, 96}, 21);
  core::ReconfigurableDecoder dec(chain.code,
                                  {.max_iterations = 10,
                                   .stop_on_codeword = true});
  int ok = 0;
  for (int f = 0; f < 10; ++f) {
    auto [cw, llr] = chain.frame(2.5);
    const auto res = dec.decode(llr);
    ok += (res.converged && res.bits == cw) ? 1 : 0;
  }
  EXPECT_EQ(ok, 10);
}

TEST(Decoder, RadixChoiceDoesNotChangeResults) {
  FixedChain chain({Standard::kWlan80211n, Rate::kR12, 27}, 5);
  core::ReconfigurableDecoder d2(chain.code,
                                 {.radix = core::Radix::kR2,
                                  .stop_on_codeword = true});
  core::ReconfigurableDecoder d4(chain.code,
                                 {.radix = core::Radix::kR4,
                                  .stop_on_codeword = true});
  for (int f = 0; f < 5; ++f) {
    auto [cw, llr] = chain.frame(2.0);
    const auto r2 = d2.decode(llr);
    const auto r4 = d4.decode(llr);
    EXPECT_EQ(r2.bits, r4.bits);
    EXPECT_EQ(r2.iterations, r4.iterations);
    EXPECT_GT(r2.datapath_cycles, r4.datapath_cycles);
  }
}

TEST(Decoder, EarlyTerminationStopsOnGoodChannel) {
  FixedChain chain({Standard::kWimax80216e, Rate::kR12, 96}, 9);
  core::ReconfigurableDecoder dec(
      chain.code,
      {.max_iterations = 10,
       .early_termination = {.enabled = true, .threshold_raw = 8}});
  auto [cw, llr] = chain.frame(5.0);
  const auto res = dec.decode(llr);
  EXPECT_TRUE(res.early_terminated);
  EXPECT_LT(res.iterations, 10);
  EXPECT_TRUE(res.converged);
  EXPECT_EQ(res.bits, cw);
}

TEST(Decoder, WithoutEtRunsAllIterations) {
  FixedChain chain({Standard::kWimax80216e, Rate::kR12, 24}, 13);
  core::ReconfigurableDecoder dec(chain.code, {.max_iterations = 10});
  auto [cw, llr] = chain.frame(6.0);
  const auto res = dec.decode(llr);
  EXPECT_EQ(res.iterations, 10);  // chip behaviour without ET
  EXPECT_FALSE(res.early_terminated);
}

TEST(Decoder, ReconfiguresBetweenStandardsMidStream) {
  // The paper's headline feature: one decoder instance serving both
  // 802.16e and 802.11n frames.
  FixedChain wimax({Standard::kWimax80216e, Rate::kR12, 96}, 31);
  FixedChain wlan({Standard::kWlan80211n, Rate::kR34, 81}, 32);
  core::ReconfigurableDecoder dec(wimax.code, {.stop_on_codeword = true});
  for (int round = 0; round < 3; ++round) {
    auto [cw1, llr1] = wimax.frame(3.0);
    dec.reconfigure(wimax.code);
    EXPECT_EQ(dec.decode(llr1).bits, cw1);
    auto [cw2, llr2] = wlan.frame(4.0);
    dec.reconfigure(wlan.code);
    EXPECT_EQ(dec.decode(llr2).bits, cw2);
  }
}

TEST(Decoder, MinSumKernelDecodesButBpIsStronger) {
  FixedChain chain({Standard::kWimax80216e, Rate::kR12, 48}, 17);
  core::ReconfigurableDecoder bp(chain.code,
                                 {.kernel = core::CnuKernel::kFullBp,
                                  .stop_on_codeword = true});
  core::ReconfigurableDecoder ms(chain.code,
                                 {.kernel = core::CnuKernel::kMinSum,
                                  .stop_on_codeword = true});
  int bp_ok = 0, ms_ok = 0;
  for (int f = 0; f < 30; ++f) {
    auto [cw, llr] = chain.frame(2.0);
    bp_ok += bp.decode(llr).converged ? 1 : 0;
    ms_ok += ms.decode(llr).converged ? 1 : 0;
  }
  EXPECT_GE(bp_ok, ms_ok);
  EXPECT_GT(bp_ok, 24);
}

TEST(Decoder, SumSubtractArchWorksAtHighSnr) {
  // The paper's literal Eq. (1) architecture at its operating point (high
  // rate / high SNR): decodes cleanly.
  FixedChain chain({Standard::kWimax80216e, Rate::kR56, 96}, 51);
  core::ReconfigurableDecoder dec(chain.code,
                                  {.cnu_arch = core::CnuArch::kSumSubtract,
                                   .stop_on_codeword = true});
  int ok = 0;
  for (int f = 0; f < 10; ++f) {
    auto [cw, llr] = chain.frame(6.5);
    ok += dec.decode(llr).converged ? 1 : 0;
  }
  EXPECT_GE(ok, 9);  // near its operating point; weaker than FB (see F1)
}

TEST(Decoder, ForwardBackwardBeatsSumSubtractAtLowSnr) {
  // The numerical-robustness ablation (DESIGN.md section 5, finding F1).
  FixedChain chain({Standard::kWimax80216e, Rate::kR12, 96}, 53);
  core::ReconfigurableDecoder fb(chain.code, {.stop_on_codeword = true});
  core::ReconfigurableDecoder ss(chain.code,
                                 {.cnu_arch = core::CnuArch::kSumSubtract,
                                  .stop_on_codeword = true});
  int fb_ok = 0, ss_ok = 0;
  for (int f = 0; f < 15; ++f) {
    auto [cw, llr] = chain.frame(2.5);
    fb_ok += fb.decode(llr).converged ? 1 : 0;
    ss_ok += ss.decode(llr).converged ? 1 : 0;
  }
  EXPECT_GT(fb_ok, ss_ok);
  EXPECT_GE(fb_ok, 14);
}

TEST(Decoder, ZeroLlrErasureRecoversWithForwardBackward) {
  // A punctured/erased bit (channel LLR exactly 0) must be recoverable
  // from the other bits in its checks.
  FixedChain chain({Standard::kWimax80216e, Rate::kR12, 24}, 55);
  core::ReconfigurableDecoder dec(chain.code, {.stop_on_codeword = true});
  auto [cw, llr] = chain.frame(8.0);
  llr[10] = 0.0;
  llr[100] = 0.0;
  const auto res = dec.decode(llr);
  EXPECT_TRUE(res.converged);
  EXPECT_EQ(res.bits, cw);
}

TEST(Decoder, InvalidConfigThrows) {
  FixedChain chain({Standard::kWimax80216e, Rate::kR12, 24});
  EXPECT_THROW(core::ReconfigurableDecoder(chain.code, {.max_iterations = 0}),
               std::invalid_argument);
}

TEST(Decoder, LlrSizeValidated) {
  FixedChain chain({Standard::kWimax80216e, Rate::kR12, 24});
  core::ReconfigurableDecoder dec(chain.code);
  std::vector<double> llr(7);
  EXPECT_THROW(dec.decode(llr), std::invalid_argument);
  std::vector<std::int32_t> raw(7);
  EXPECT_THROW(dec.decode_raw(raw), std::invalid_argument);
}

TEST(Decoder, CycleCountMatchesFormulaPerIteration) {
  // Idealised R2 cycles per iteration = sum over layers of 2*d_l; R4 uses
  // ceil(d/2)+1 + ceil(d/2).
  FixedChain chain({Standard::kWimax80216e, Rate::kR12, 24}, 3);
  core::ReconfigurableDecoder dec(chain.code,
                                  {.max_iterations = 1,
                                   .radix = core::Radix::kR2});
  auto [cw, llr] = chain.frame(8.0);
  const auto res = dec.decode(llr);
  long long expect = 0;
  for (const auto& layer : chain.code.layers())
    expect += 2 * static_cast<long long>(layer.size());
  EXPECT_EQ(res.datapath_cycles, expect);
}

// Property sweep: the decoder works across message formats (the paper's
// 8-bit choice is a design point, not a requirement of the architecture).
class DecoderFormatSweep
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(DecoderFormatSweep, DecodesAtModerateSnr) {
  const auto [total, frac] = GetParam();
  FixedChain chain({Standard::kWimax80216e, Rate::kR12, 48},
                   0xA0 + static_cast<std::uint64_t>(total * 16 + frac));
  core::ReconfigurableDecoder dec(
      chain.code, {.format = fixed::QFormat(total, frac),
                   .stop_on_codeword = true});
  int ok = 0;
  for (int f = 0; f < 6; ++f) {
    auto [cw, llr] = chain.frame(3.5);
    ok += dec.decode(llr).converged ? 1 : 0;
  }
  // Wider formats must not be worse than a 6-bit datapath's floor.
  EXPECT_GE(ok, 5) << "format Q" << total - 1 - frac << "." << frac;
}

INSTANTIATE_TEST_SUITE_P(
    Formats, DecoderFormatSweep,
    ::testing::Values(std::make_pair(6, 1), std::make_pair(7, 2),
                      std::make_pair(8, 2), std::make_pair(8, 3),
                      std::make_pair(10, 3), std::make_pair(12, 4)),
    [](const auto& info) {
      return "Q" + std::to_string(info.param.first) + "_" +
             std::to_string(info.param.second);
    });

// Property sweep: raising the ET threshold can only delay stopping (more
// iterations) — the paper's threshold knob trades power for confidence.
class EtThresholdSweep : public ::testing::TestWithParam<int> {};

TEST_P(EtThresholdSweep, HigherThresholdNeverStopsEarlier) {
  const int threshold = GetParam();
  FixedChain chain({Standard::kWimax80216e, Rate::kR12, 48}, 0xE7);
  core::ReconfigurableDecoder low(
      chain.code,
      {.early_termination = {.enabled = true, .threshold_raw = threshold}});
  core::ReconfigurableDecoder high(
      chain.code, {.early_termination = {.enabled = true,
                                         .threshold_raw = threshold + 8}});
  for (int f = 0; f < 5; ++f) {
    auto [cw, llr] = chain.frame(4.0);
    const auto rl = low.decode(llr);
    const auto rh = high.decode(llr);
    EXPECT_LE(rl.iterations, rh.iterations) << "threshold " << threshold;
  }
}

INSTANTIATE_TEST_SUITE_P(Thresholds, EtThresholdSweep,
                         ::testing::Values(0, 4, 8, 16, 32));

// Property sweep: the fixed-point decoder fixes every frame at high SNR in
// every registered mode.
class DecoderAllModes : public ::testing::TestWithParam<codes::CodeId> {};

TEST_P(DecoderAllModes, DecodesHighSnrFrame) {
  FixedChain chain(GetParam(), 0xF00D + GetParam().z);
  core::ReconfigurableDecoder dec(chain.code, {.stop_on_codeword = true});
  auto [cw, llr] = chain.frame(7.0);
  const auto res = dec.decode(llr);
  EXPECT_TRUE(res.converged) << chain.code.name();
  EXPECT_EQ(res.bits, cw) << chain.code.name();
}

INSTANTIATE_TEST_SUITE_P(AllModes, DecoderAllModes,
                         ::testing::ValuesIn(codes::all_modes()),
                         [](const auto& info) {
                           std::string n = to_string(info.param);
                           for (char& c : n)
                             if (!isalnum(static_cast<unsigned char>(c)))
                               c = '_';
                           return n;
                         });

}  // namespace
