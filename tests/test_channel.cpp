#include <gtest/gtest.h>

#include <cmath>

#include "ldpc/channel/channel.hpp"
#include "ldpc/util/stats.hpp"

namespace {

using namespace ldpc::channel;
using ldpc::util::RunningStats;
using ldpc::util::Xoshiro256;

TEST(Modulate, BpskMapsSigns) {
  const std::vector<std::uint8_t> bits{0, 1, 1, 0};
  const auto frame = modulate(bits, Modulation::kBpsk);
  EXPECT_DOUBLE_EQ(frame.amplitude, 1.0);
  ASSERT_EQ(frame.samples.size(), 4u);
  EXPECT_DOUBLE_EQ(frame.samples[0], 1.0);
  EXPECT_DOUBLE_EQ(frame.samples[1], -1.0);
}

TEST(Modulate, QpskUnitSymbolEnergy) {
  const std::vector<std::uint8_t> bits{0, 0};
  const auto frame = modulate(bits, Modulation::kQpsk);
  // One QPSK symbol = two dimensions of amplitude 1/sqrt(2):
  double es = 0;
  for (double s : frame.samples) es += s * s;
  EXPECT_NEAR(es, 1.0, 1e-12);
}

TEST(Ebn0ToSigma, KnownBpskValue) {
  // Rate 1/2 BPSK at 0 dB: sigma^2 = 1/(2*0.5*1) = 1.
  EXPECT_NEAR(ebn0_to_sigma(0.0, 0.5, Modulation::kBpsk), 1.0, 1e-12);
  // Rate 1 BPSK at 3.010 dB: sigma^2 = 1/(2*2) = 0.25.
  EXPECT_NEAR(ebn0_to_sigma(10 * std::log10(2.0), 1.0, Modulation::kBpsk),
              0.5, 1e-9);
}

TEST(Ebn0ToSigma, HigherSnrMeansLessNoise) {
  double prev = 1e9;
  for (double db = 0.0; db <= 6.0; db += 1.0) {
    const double s = ebn0_to_sigma(db, 0.5, Modulation::kBpsk);
    EXPECT_LT(s, prev);
    prev = s;
  }
}

TEST(Ebn0ToSigma, InvalidRateThrows) {
  EXPECT_THROW(ebn0_to_sigma(0.0, 0.0, Modulation::kBpsk),
               std::invalid_argument);
  EXPECT_THROW(ebn0_to_sigma(0.0, 1.5, Modulation::kBpsk),
               std::invalid_argument);
}

TEST(Ebn0ToSigma, QpskMatchesBpskPerBit) {
  // With unit-energy symbols and Gray mapping, QPSK is two independent
  // BPSK channels: Eb and the per-dimension SNR relation must match.
  const double sb = ebn0_to_sigma(2.0, 0.5, Modulation::kBpsk);
  const double sq = ebn0_to_sigma(2.0, 0.5, Modulation::kQpsk);
  // Per-dimension amplitude drops by sqrt(2), so sigma must too.
  EXPECT_NEAR(sq * std::sqrt(2.0), sb, 1e-12);
}

TEST(AwgnChannel, NoiseMomentsMatchSigma) {
  Xoshiro256 rng(17);
  AwgnChannel chan(0.8);
  std::vector<double> samples(200000, 0.0);
  chan.transmit(samples, rng);
  RunningStats s;
  for (double x : samples) s.add(x);
  EXPECT_NEAR(s.mean(), 0.0, 0.01);
  EXPECT_NEAR(s.stddev(), 0.8, 0.01);
}

TEST(AwgnChannel, InvalidSigmaThrows) {
  EXPECT_THROW(AwgnChannel(0.0), std::invalid_argument);
  EXPECT_THROW(AwgnChannel(-1.0), std::invalid_argument);
}

TEST(AwgnChannel, DeterministicGivenSeed) {
  AwgnChannel chan(1.0);
  std::vector<double> a(16, 0.0), b(16, 0.0);
  Xoshiro256 r1(5), r2(5);
  chan.transmit(a, r1);
  chan.transmit(b, r2);
  EXPECT_EQ(a, b);
}

TEST(DemapLlr, SignAndScale) {
  ModulatedFrame frame;
  frame.amplitude = 1.0;
  frame.samples = {2.0, -1.0};
  const auto llr = demap_llr(frame, 1.0);  // scale = 2
  EXPECT_DOUBLE_EQ(llr[0], 4.0);
  EXPECT_DOUBLE_EQ(llr[1], -2.0);
  EXPECT_THROW(demap_llr(frame, 0.0), std::invalid_argument);
}

TEST(DemapLlr, NoiselessLlrRecoversBits) {
  const std::vector<std::uint8_t> bits{0, 1, 0, 1, 1};
  const auto frame = modulate(bits, Modulation::kQpsk);
  const auto llr = demap_llr(frame, 0.5);
  EXPECT_EQ(hard_decision(llr), bits);
}

TEST(HardDecision, ZeroLlrIsBitZero) {
  const std::vector<double> llr{0.0, -0.0, 1e-9, -1e-9};
  const auto bits = hard_decision(llr);
  EXPECT_EQ(bits[0], 0);
  EXPECT_EQ(bits[2], 0);
  EXPECT_EQ(bits[3], 1);
}

TEST(CountBitErrors, CountsAndValidates) {
  const std::vector<std::uint8_t> a{0, 1, 1, 0};
  const std::vector<std::uint8_t> b{0, 0, 1, 1};
  EXPECT_EQ(count_bit_errors(a, b), 2);
  const std::vector<std::uint8_t> c{0};
  EXPECT_THROW(count_bit_errors(a, c), std::invalid_argument);
}

TEST(Chain, QpskEndToEndMatchesBpskPerformance) {
  // Gray-mapped QPSK with unit symbol energy is two independent binary
  // channels: at equal Eb/N0 the per-bit error rate matches BPSK.
  Xoshiro256 rng(29);
  const int n = 100000;
  std::vector<std::uint8_t> bits(n);
  for (auto& b : bits) b = rng.bit();
  double ber[2] = {0, 0};
  int idx = 0;
  for (auto mod : {Modulation::kBpsk, Modulation::kQpsk}) {
    const double sigma = ebn0_to_sigma(4.0, 1.0, mod);
    auto frame = modulate(bits, mod);
    AwgnChannel(sigma).transmit(frame.samples, rng);
    const auto rx = hard_decision(demap_llr(frame, sigma));
    ber[idx++] = static_cast<double>(count_bit_errors(bits, rx)) / n;
  }
  EXPECT_NEAR(ber[0], ber[1], 4e-3);
  EXPECT_NEAR(ber[1], 1.25e-2, 4e-3);  // Q(sqrt(2*10^0.4))
}

TEST(Chain, UncodedBpskBerMatchesTheory) {
  // BER = Q(sqrt(2 Eb/N0)); at 4 dB ~ 1.25e-2.
  Xoshiro256 rng(23);
  const double sigma = ebn0_to_sigma(4.0, 1.0, Modulation::kBpsk);
  AwgnChannel chan(sigma);
  const int n = 200000;
  std::vector<std::uint8_t> bits(n);
  for (auto& b : bits) b = rng.bit();
  auto frame = modulate(bits, Modulation::kBpsk);
  chan.transmit(frame.samples, rng);
  const auto rx = hard_decision(demap_llr(frame, sigma));
  const double ber =
      static_cast<double>(count_bit_errors(bits, rx)) / n;
  EXPECT_NEAR(ber, 1.25e-2, 2.5e-3);
}

}  // namespace
