// HARQ link-layer suite: redundancy-version geometry, cross-round
// soft combining, the fading-channel models behind retransmission, and
// the closed-loop LinkSimulator.
//
// Contracts:
//   1. QCCode::rv_start places the 38.212-style k0 anchors (BG1
//      {0,17,33,56}/66, BG2 {0,13,25,43}/50, z-aligned) and
//      extract_transmitted at every rv equals the reference
//      tx_bit_index((k0 + i) % sendable) walk — including windows that
//      straddle the circular-buffer end, start next to the filler block,
//      and repeat past E > sendable.
//   2. Cross-round combining is accumulate-then-quantise: a
//      HarqSoftBuffer of rounds quantises (deposit_combined_quant at
//      int32/int16/int8, every dispatch tier) to exactly the int32
//      deposit_combined codes, and a single-rv0-round buffer reproduces
//      deposit_transmitted_quant byte for byte — round-1 HARQ is the
//      one-shot path, no special case.
//   3. Channel models: AwgnChannel::transmit_demap is the historical
//      noise stream; BlockFadingChannel is unit-power, per-block
//      constant, and deterministic per seed.
//   4. The closed loop: Es/N0-based cumulative energy accounting equals
//      the nominal one-shot Eb/N0 when every block delivers in round 1;
//      on a fading channel the round-2 combined FER beats the round-1
//      FER (the IR gain), combining beats not combining, and every
//      LinkPoint statistic is bit-identical across thread counts.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "ldpc/channel/channel.hpp"
#include "ldpc/codes/registry.hpp"
#include "ldpc/core/golden.hpp"
#include "ldpc/core/harq.hpp"
#include "ldpc/core/layer_engine.hpp"
#include "ldpc/enc/encoder.hpp"
#include "ldpc/sim/harq_link.hpp"
#include "ldpc/sim/simulator.hpp"
#include "ldpc/util/rng.hpp"

namespace {

using namespace ldpc;
namespace kernels = core::kernels;

std::vector<kernels::Tier> available_tiers() {
  std::set<kernels::Tier> seen;
  for (const kernels::Tier t :
       {kernels::Tier::kScalar, kernels::Tier::kSse42, kernels::Tier::kAvx2,
        kernels::Tier::kAvx512})
    seen.insert(kernels::force_tier(t));
  kernels::clear_forced_tier();
  return {seen.begin(), seen.end()};
}

core::DecoderConfig harq_config() {
  core::DecoderConfig cfg;
  cfg.max_iterations = 10;
  cfg.kernel = core::CnuKernel::kMinSum;
  cfg.stop_on_codeword = true;
  cfg.early_termination.enabled = true;
  return cfg;
}

core::DecoderConfig strict_app_config() {
  core::DecoderConfig cfg = harq_config();
  cfg.app_extra_bits = 0;
  return cfg;
}

std::vector<std::uint8_t> random_codeword(const codes::QCCode& code,
                                          std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  const auto encoder = enc::make_encoder(code);
  std::vector<std::uint8_t> info(
      static_cast<std::size_t>(code.payload_bits()));
  enc::random_bits(rng, info);
  return encoder->encode(info);
}

// ---------------------------------------------------------------------------
// Contract 1: redundancy-version geometry.

TEST(RvGeometry, Bg1AnchorsAreZAligned38212) {
  // BG1 sendable = 66z, so k0 = z * floor(num * 66z / (66z)) = num * z.
  const auto code = codes::make_nr_code(codes::Rate::kR13, 52);
  EXPECT_EQ(code.rv_start(0), 0);
  EXPECT_EQ(code.rv_start(1), 17 * 52);
  EXPECT_EQ(code.rv_start(2), 33 * 52);
  EXPECT_EQ(code.rv_start(3), 56 * 52);
}

TEST(RvGeometry, Bg2AnchorsAreZAligned38212) {
  const auto code = codes::make_nr_code(codes::Rate::kR15, 36);
  EXPECT_EQ(code.rv_start(0), 0);
  EXPECT_EQ(code.rv_start(1), 13 * 36);
  EXPECT_EQ(code.rv_start(2), 25 * 36);
  EXPECT_EQ(code.rv_start(3), 43 * 36);
}

TEST(RvGeometry, ClassicCodesFallBackToQuarters) {
  const auto code = codes::make_code(
      {codes::Standard::kWimax80216e, codes::Rate::kR12, 24});
  const int sendable = code.sendable_bits();
  EXPECT_EQ(code.rv_start(0), 0);
  for (int rv = 1; rv < 4; ++rv) {
    const int k0 = code.rv_start(rv);
    EXPECT_EQ(k0 % code.z(), 0) << "rv" << rv;
    EXPECT_EQ(k0, code.z() * (rv * sendable / (4 * code.z()))) << "rv" << rv;
  }
}

TEST(RvGeometry, RejectsOutOfRangeRv) {
  const auto code = codes::make_nr_code(codes::Rate::kR13, 52);
  EXPECT_THROW(code.rv_start(-1), std::invalid_argument);
  EXPECT_THROW(code.rv_start(4), std::invalid_argument);
  codes::TransmissionScheme scheme = code.scheme();
  scheme.redundancy_version = 4;
  auto copy = code;
  EXPECT_THROW(copy.set_scheme(scheme), std::invalid_argument);
}

TEST(RvGeometry, NonZeroRvBreaksDegeneracy) {
  auto code = codes::make_nr_code(codes::Rate::kR13, 52);
  codes::TransmissionScheme scheme = code.scheme();
  ASSERT_FALSE(scheme.is_degenerate());  // NR schemes puncture
  const auto classic = codes::make_code(
      {codes::Standard::kWimax80216e, codes::Rate::kR12, 24});
  codes::TransmissionScheme plain = classic.scheme();
  ASSERT_TRUE(plain.is_degenerate());
  plain.redundancy_version = 2;
  EXPECT_FALSE(plain.is_degenerate());
}

/// Reference extraction: the documented circular-buffer walk.
std::vector<std::uint8_t> reference_extract(const codes::QCCode& code,
                                            std::span<const std::uint8_t> cw,
                                            int rv) {
  const int sendable = code.sendable_bits();
  const int k0 = code.rv_start(rv);
  std::vector<std::uint8_t> tx(
      static_cast<std::size_t>(code.transmitted_bits()));
  for (int i = 0; i < code.transmitted_bits(); ++i)
    tx[static_cast<std::size_t>(i)] =
        cw[static_cast<std::size_t>(code.tx_bit_index((k0 + i) % sendable))];
  return tx;
}

TEST(RvExtraction, MatchesReferenceWalkOnEveryWindowShape) {
  // E chosen so the four rv windows cover: fits-before-end, straddles the
  // circular-buffer end, starts just past the filler block, and E >
  // sendable (wraparound repetition) — on both base graphs.
  struct Case {
    codes::Rate rate;
    int z;
    int e;
    int fillers;
  };
  const Case cases[] = {
      {codes::Rate::kR13, 52, 2600, 0},   // BG1, E < sendable
      {codes::Rate::kR13, 96, 5000, 120}, // BG1, fillers next to rv windows
      {codes::Rate::kR13, 36, 66 * 36 + 500, 0},  // BG1, E > sendable
      {codes::Rate::kR15, 36, 1500, 40},  // BG2, fillers
      {codes::Rate::kR15, 96, 6000, 0},   // BG2, E > sendable
      {codes::Rate::kR15, 52, 50 * 52, 0},  // BG2, E == sendable exactly
  };
  for (const Case& c : cases) {
    const auto code =
        codes::make_nr_code(c.rate, c.z, c.e, c.fillers);
    const auto cw = random_codeword(code, 0xABCDu ^ c.z);
    for (int rv = 0; rv < 4; ++rv) {
      // Straddle check is meaningful: at least one window must wrap.
      std::vector<std::uint8_t> tx(
          static_cast<std::size_t>(code.transmitted_bits()));
      code.extract_transmitted(cw, tx, rv);
      EXPECT_EQ(tx, reference_extract(code, cw, rv))
          << code.name() << " rv" << rv;
    }
    // At least one non-zero rv window straddles the buffer end for these
    // E values (k0 + E > sendable) — the boundary this suite exists for.
    bool straddles = false;
    for (int rv = 1; rv < 4; ++rv)
      straddles |= code.rv_start(rv) + code.transmitted_bits() >
                   code.sendable_bits();
    EXPECT_TRUE(straddles) << code.name();
  }
}

TEST(RvExtraction, SchemeRvDrivesTheDefaultOverload) {
  auto code = codes::make_nr_code(codes::Rate::kR13, 52, 2600, 0);
  const auto cw = random_codeword(code, 7);
  codes::TransmissionScheme scheme = code.scheme();
  scheme.redundancy_version = 2;
  code.set_scheme(scheme);
  std::vector<std::uint8_t> via_scheme(
      static_cast<std::size_t>(code.transmitted_bits()));
  code.extract_transmitted(cw, via_scheme);
  EXPECT_EQ(via_scheme, reference_extract(code, cw, 2));
}

// ---------------------------------------------------------------------------
// Contract 2: cross-round combining bit-identity.

/// Builds a buffer of `rounds` fading-channel rounds following the
/// default rv sequence and checks every lane type x tier emits the int32
/// codes elementwise; returns the int32 codes for further checks.
template <class T>
void check_combined_quant(const codes::QCCode& code,
                          const core::DecoderConfig& cfg,
                          const core::HarqSoftBuffer& soft,
                          std::span<const std::int32_t> wide) {
  const core::DatapathTraits<std::int32_t> traits{cfg};
  const auto n = static_cast<std::size_t>(code.n());
  std::vector<T> narrow(n);
  for (const kernels::Tier tier : available_tiers()) {
    ASSERT_EQ(kernels::force_tier(tier), tier);
    core::deposit_combined_quant<T>(code, traits, soft,
                                    std::span<T>(narrow));
    for (std::size_t v = 0; v < n; ++v)
      ASSERT_EQ(static_cast<std::int32_t>(narrow[v]), wide[v])
          << code.name() << " tier=" << to_string(tier)
          << " type=" << to_string(kernels::lane_type_of<T>) << " v=" << v;
  }
  kernels::clear_forced_tier();
}

class HarqCombining
    : public ::testing::TestWithParam<core::golden::NrRateMatchedCase> {};

TEST_P(HarqCombining, FusedNarrowLanesMatchInt32AtEveryTier) {
  const auto& c = GetParam();
  const auto code =
      codes::make_nr_code(c.rate, c.z, c.transmitted_bits, c.filler_bits);
  const auto cw = random_codeword(code, 0xC0FFEEu ^ c.z);
  const double sigma = channel::esn0_to_sigma(-1.0,
                                              channel::Modulation::kBpsk);
  const auto chan = channel::make_channel(channel::ChannelKind::kRayleighBlock,
                                          sigma, 128);
  util::Xoshiro256 rng(99);

  core::HarqSoftBuffer soft;
  soft.reset(code);
  const int rv_seq[] = {0, 2, 3, 1};
  for (int r = 0; r < 3; ++r) {
    const auto llrs = sim::transmit_llrs(
        code, cw, channel::Modulation::kBpsk, *chan, rng, rv_seq[r]);
    soft.add_round(code, llrs, rv_seq[r]);

    // After every round: the generic int32 deposit is the reference...
    const core::DatapathTraits<std::int32_t> traits{harq_config()};
    std::vector<std::int32_t> wide(static_cast<std::size_t>(code.n()));
    core::deposit_combined(code, traits, soft,
                           std::span<std::int32_t>(wide));
    // ...and the fused narrow paths must equal it elementwise.
    check_combined_quant<std::int32_t>(code, harq_config(), soft, wide);
    check_combined_quant<std::int16_t>(code, harq_config(), soft, wide);

    const core::DatapathTraits<std::int32_t> strict{strict_app_config()};
    std::vector<std::int32_t> wide8(static_cast<std::size_t>(code.n()));
    core::deposit_combined(code, strict, soft,
                           std::span<std::int32_t>(wide8));
    check_combined_quant<std::int8_t>(code, strict_app_config(), soft,
                                      wide8);
  }
}

TEST_P(HarqCombining, SingleRv0RoundEqualsOneShotDeposit) {
  const auto& c = GetParam();
  const auto code =
      codes::make_nr_code(c.rate, c.z, c.transmitted_bits, c.filler_bits);
  const auto cw = random_codeword(code, 0xBEEFu ^ c.z);
  const double sigma = channel::esn0_to_sigma(0.5,
                                              channel::Modulation::kBpsk);
  const channel::AwgnChannel chan(sigma);
  util::Xoshiro256 rng(11);
  const auto llrs = sim::transmit_llrs(code, cw, channel::Modulation::kBpsk,
                                       chan, rng, 0);

  const core::DatapathTraits<std::int32_t> traits{harq_config()};
  core::HarqSoftBuffer soft;
  soft.reset(code);
  soft.add_round(code, llrs, 0);

  const auto n = static_cast<std::size_t>(code.n());
  std::vector<std::int16_t> combined(n), oneshot(n);
  std::vector<double> acc;
  core::deposit_combined_quant<std::int16_t>(
      code, traits, soft, std::span<std::int16_t>(combined));
  core::deposit_transmitted_quant<std::int16_t>(
      code, traits, llrs, std::span<std::int16_t>(oneshot), acc);
  EXPECT_EQ(combined, oneshot) << code.name();

  // And the decoded result of the combined frame is the one-shot decode.
  core::ReconfigurableDecoder ref(code, harq_config());
  std::vector<std::int32_t> raw(n);
  core::deposit_combined(code, traits, soft, std::span<std::int32_t>(raw));
  const auto via_combined = ref.decode_raw(raw);
  const auto via_llrs = ref.decode(llrs);
  EXPECT_EQ(via_combined.bits, via_llrs.bits);
  EXPECT_EQ(via_combined.iterations, via_llrs.iterations);
}

INSTANTIATE_TEST_SUITE_P(
    RateMatched, HarqCombining,
    ::testing::ValuesIn(core::golden::nr_rate_matched_cases()),
    [](const auto& info) {
      return std::string(info.param.rate == codes::Rate::kR13 ? "BG1"
                                                              : "BG2") +
             "_z" + std::to_string(info.param.z) + "_E" +
             std::to_string(info.param.transmitted_bits) + "_F" +
             std::to_string(info.param.filler_bits);
    });

TEST(HarqCombining, UncoveredPositionsStayExactZeroErasures) {
  // rv2 alone covers a window deep in the parity: everything outside it
  // (and the punctured columns, and nothing else) must read exact zero.
  const auto code = codes::make_nr_code(codes::Rate::kR13, 52, 2600, 0);
  const auto cw = random_codeword(code, 3);
  const double sigma = channel::esn0_to_sigma(0.0,
                                              channel::Modulation::kBpsk);
  const channel::AwgnChannel chan(sigma);
  util::Xoshiro256 rng(5);
  const auto llrs = sim::transmit_llrs(code, cw, channel::Modulation::kBpsk,
                                       chan, rng, 2);

  core::HarqSoftBuffer soft;
  soft.reset(code);
  soft.add_round(code, llrs, 2);
  const core::DatapathTraits<std::int32_t> traits{harq_config()};
  std::vector<std::int16_t> raw(static_cast<std::size_t>(code.n()));
  core::deposit_combined_quant<std::int16_t>(code, traits, soft,
                                             std::span<std::int16_t>(raw));
  const auto covered = soft.covered();
  long long uncovered = 0, nonzero_uncovered = 0;
  for (int v = 0; v < code.n(); ++v) {
    if (covered[static_cast<std::size_t>(v)]) continue;
    ++uncovered;
    if (raw[static_cast<std::size_t>(v)] != 0) ++nonzero_uncovered;
  }
  EXPECT_GT(uncovered, 0);  // rv2's window cannot cover the whole buffer
  EXPECT_EQ(nonzero_uncovered, 0);
}

// ---------------------------------------------------------------------------
// Contract 3: channel models.

TEST(Channels, AwgnTransmitDemapIsTheHistoricalStream) {
  const auto code = codes::make_code(
      {codes::Standard::kWimax80216e, codes::Rate::kR12, 24});
  const auto cw = random_codeword(code, 21);
  const double sigma = 0.8;
  util::Xoshiro256 a(42), b(42);
  const auto legacy = sim::transmit_llrs(code, cw,
                                         channel::Modulation::kBpsk, sigma,
                                         a);
  const channel::AwgnChannel chan(sigma);
  const auto via_channel = sim::transmit_llrs(
      code, cw, channel::Modulation::kBpsk, chan, b, 0);
  EXPECT_EQ(legacy, via_channel);  // bit-identical doubles, same rng walk
}

TEST(Channels, BlockFadingIsPerBlockConstantAndDeterministic) {
  const double sigma = 0.4;
  const int coherence = 32;
  channel::BlockFadingChannel chan(sigma, coherence);
  channel::ModulatedFrame frame;
  frame.amplitude = 1.0;
  frame.samples.assign(128, 1.0);  // all-one symbols expose h directly
  util::Xoshiro256 rng1(9), rng2(9);
  const auto llr1 = chan.transmit_demap(frame, rng1);
  const auto llr2 = chan.transmit_demap(frame, rng2);
  EXPECT_EQ(llr1, llr2);  // deterministic per seed

  // Against a noise-free channel the LLR of block b is scale * h_b^2 *
  // sample: constant within a coherence block, varying across blocks.
  channel::BlockFadingChannel clean(1e-9, coherence);
  util::Xoshiro256 rng3(9);
  const auto pure = clean.transmit_demap(frame, rng3);
  std::set<long long> distinct;
  for (std::size_t b = 0; b < pure.size(); b += coherence) {
    for (std::size_t i = 1; i < static_cast<std::size_t>(coherence); ++i)
      EXPECT_NEAR(pure[b + i] / pure[b], 1.0, 1e-6);  // residual 1e-9 noise
    distinct.insert(std::llround(pure[b] / pure[0] * 1e6));
  }
  EXPECT_GT(distinct.size(), 1u);  // fades actually vary across blocks
}

TEST(Channels, BlockFadingIsUnitPower) {
  // E[h^2] = 1 by construction; a long average over fades confirms the
  // normalisation (no hidden SNR shift vs AWGN).
  channel::BlockFadingChannel clean(1e-12, 1);
  channel::ModulatedFrame frame;
  frame.amplitude = 1.0;
  frame.samples.assign(20000, 1.0);
  util::Xoshiro256 rng(123);
  const auto llr = clean.transmit_demap(frame, rng);
  // llr_i = scale * h_i^2 with scale = 2 a / sigma^2; normalise it out.
  const double scale = 2.0 / (1e-12 * 1e-12);
  double mean_h2 = 0.0;
  for (double l : llr) mean_h2 += l / scale;
  mean_h2 /= static_cast<double>(llr.size());
  EXPECT_NEAR(mean_h2, 1.0, 0.05);
}

TEST(Channels, FactoryBuildsEveryKind) {
  const double sigma = 0.7;
  const auto awgn = channel::make_channel(channel::ChannelKind::kAwgn,
                                          sigma, 0);
  const auto block = channel::make_channel(
      channel::ChannelKind::kRayleighBlock, sigma, 64);
  const auto iid = channel::make_channel(channel::ChannelKind::kRayleighIid,
                                         sigma, 0);
  EXPECT_DOUBLE_EQ(awgn->sigma(), sigma);
  EXPECT_DOUBLE_EQ(block->sigma(), sigma);
  EXPECT_DOUBLE_EQ(iid->sigma(), sigma);
}

TEST(Channels, Esn0IsRateFree) {
  // Es/N0 per transmitted coded bit: sigma must not depend on any code
  // rate, and equals ebn0_to_sigma at rate 1.
  const double db = 2.5;
  EXPECT_DOUBLE_EQ(
      channel::esn0_to_sigma(db, channel::Modulation::kBpsk),
      channel::ebn0_to_sigma(db, 1.0, channel::Modulation::kBpsk));
}

// ---------------------------------------------------------------------------
// Contract 4: the closed loop.

TEST(McsPolicy, StepsDownOnFailureUpAfterStreak) {
  sim::McsPolicy policy(3, {.up_after_acks = 2, .initial_mode = 1});
  EXPECT_EQ(policy.mode(), 1);
  policy.report(false, 4);  // delivery failure: step down
  EXPECT_EQ(policy.mode(), 0);
  policy.report(true, 2);  // delivered on retransmission: hold
  EXPECT_EQ(policy.mode(), 0);
  policy.report(true, 1);
  policy.report(true, 1);  // two clean first-round ACKs: step up
  EXPECT_EQ(policy.mode(), 1);
  policy.report(true, 1);
  policy.report(true, 1);
  EXPECT_EQ(policy.mode(), 2);
  policy.report(true, 1);
  policy.report(true, 1);
  EXPECT_EQ(policy.mode(), 2);  // already at the top
}

sim::HarqConfig base_link_config() {
  sim::HarqConfig cfg;
  cfg.seed = 7;
  cfg.users = 4;
  cfg.blocks_per_user = 32;
  cfg.max_rounds = 3;
  cfg.threads = 1;
  return cfg;
}

TEST(LinkSimulator, CumulativeEnergyEqualsNominalEbn0WhenOneShot) {
  // High Es/N0, AWGN, max_rounds = 1: every block delivers first try, so
  // tx_bits / payload_bits = 1 / effective_rate exactly and the
  // cumulative Eb/N0 must recover the classic one-shot value.
  const auto code = codes::make_nr_code(codes::Rate::kR13, 52, 2600, 0);
  sim::HarqConfig cfg = base_link_config();
  cfg.max_rounds = 1;
  cfg.blocks_per_user = 8;
  sim::LinkSimulator link({&code}, harq_config(), cfg);
  const double esn0 = 6.0;
  const auto point = link.run_point(esn0);
  ASSERT_EQ(point.delivered, point.blocks);
  EXPECT_EQ(point.rounds[0].failures, 0);
  const double nominal =
      esn0 - 10.0 * std::log10(code.effective_rate());
  EXPECT_NEAR(point.cumulative_ebn0_db(), nominal, 1e-9);
  EXPECT_NEAR(point.goodput(), code.effective_rate(), 1e-12);
}

TEST(LinkSimulator, RetransmissionsRaiseCumulativeEnergy) {
  const auto code = codes::make_nr_code(codes::Rate::kR13, 52, 2600, 0);
  sim::HarqConfig cfg = base_link_config();
  cfg.channel = channel::ChannelKind::kRayleighBlock;
  sim::LinkSimulator link({&code}, harq_config(), cfg);
  const double esn0 = 3.0;
  const auto point = link.run_point(esn0);
  ASSERT_GT(point.rounds[1].attempts, 0);  // some NACKs happened
  const double nominal =
      esn0 - 10.0 * std::log10(code.effective_rate());
  // Every retransmitted block spends extra energy per delivered bit.
  EXPECT_GT(point.cumulative_ebn0_db(), nominal);
  EXPECT_LT(point.goodput(), code.effective_rate());
}

TEST(LinkSimulator, IrCombiningBeatsRound1OnFading) {
  // The acceptance lock: at a fixed Es/N0 on the block-fading channel the
  // round-2 (combined) residual FER is strictly below the round-1 FER.
  const auto code = codes::make_nr_code(codes::Rate::kR13, 52, 2600, 0);
  sim::HarqConfig cfg = base_link_config();
  cfg.channel = channel::ChannelKind::kRayleighBlock;
  cfg.blocks_per_user = 64;
  sim::LinkSimulator link({&code}, harq_config(), cfg);
  const auto point = link.run_point(1.0);
  const auto& r = point.rounds;
  ASSERT_GT(r[0].failures, 10);  // enough NACKs to measure round 2
  EXPECT_EQ(r[1].attempts, r[0].failures);
  EXPECT_LT(r[1].residual_fer(), r[0].residual_fer());
}

TEST(LinkSimulator, CombiningBeatsSelfDecodingRetransmissions) {
  const auto code = codes::make_nr_code(codes::Rate::kR13, 52, 2600, 0);
  sim::HarqConfig cfg = base_link_config();
  cfg.channel = channel::ChannelKind::kRayleighBlock;
  cfg.blocks_per_user = 64;
  sim::LinkSimulator with(std::vector<const codes::QCCode*>{&code},
                          harq_config(), cfg);
  cfg.combine = false;
  sim::LinkSimulator without(std::vector<const codes::QCCode*>{&code},
                             harq_config(), cfg);
  const auto combined = with.run_point(1.0);
  const auto solo = without.run_point(1.0);
  // Same channel realisations (identical seeding), so the comparison is
  // paired: combining can only help.
  EXPECT_GT(combined.delivered, solo.delivered);
  EXPECT_GT(combined.goodput(), solo.goodput());
}

TEST(LinkSimulator, BitIdenticalAcrossThreadCounts) {
  const auto code = codes::make_nr_code(codes::Rate::kR15, 36, 1500, 40);
  sim::HarqConfig cfg = base_link_config();
  cfg.channel = channel::ChannelKind::kRayleighBlock;
  cfg.users = 6;
  cfg.blocks_per_user = 16;
  sim::LinkSimulator one({&code}, harq_config(), cfg);
  cfg.threads = 4;
  sim::LinkSimulator four({&code}, harq_config(), cfg);
  const auto a = one.run_point(2.0);
  const auto b = four.run_point(2.0);
  EXPECT_EQ(a.blocks, b.blocks);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.undetected, b.undetected);
  EXPECT_EQ(a.tx_bits_sent, b.tx_bits_sent);
  EXPECT_EQ(a.payload_bits_delivered, b.payload_bits_delivered);
  EXPECT_EQ(a.info_errors.bit_errors(), b.info_errors.bit_errors());
  EXPECT_EQ(a.info_errors.frame_errors(), b.info_errors.frame_errors());
  ASSERT_EQ(a.rounds.size(), b.rounds.size());
  for (std::size_t r = 0; r < a.rounds.size(); ++r) {
    EXPECT_EQ(a.rounds[r].attempts, b.rounds[r].attempts);
    EXPECT_EQ(a.rounds[r].failures, b.rounds[r].failures);
  }
  EXPECT_DOUBLE_EQ(a.rounds_to_ack.mean(), b.rounds_to_ack.mean());
  EXPECT_DOUBLE_EQ(a.iterations.mean(), b.iterations.mean());
}

TEST(LinkSimulator, McsAdaptationTracksTheLadder) {
  // Two-mode ladder: robust low-rate BG2 first, aggressive BG1 second.
  const auto robust = codes::make_nr_code(codes::Rate::kR15, 36, 2000, 0);
  const auto aggressive =
      codes::make_nr_code(codes::Rate::kR13, 36, 2600, 0);
  sim::HarqConfig cfg = base_link_config();
  cfg.adapt_mcs = true;
  cfg.mcs.up_after_acks = 2;
  cfg.users = 2;
  cfg.blocks_per_user = 24;
  sim::LinkSimulator link({&robust, &aggressive}, harq_config(), cfg);
  // Clean channel: the policy should climb to (and deliver on) the
  // aggressive mode; goodput must beat the robust mode's ceiling.
  const auto point = link.run_point(5.0);
  EXPECT_EQ(point.delivered, point.blocks);
  EXPECT_GT(point.goodput(), robust.effective_rate());
}

}  // namespace
