#include <gtest/gtest.h>

#include <cmath>

#include "ldpc/baseline/boxplus.hpp"
#include "ldpc/baseline/flooding_bp.hpp"
#include "ldpc/baseline/layered_bp.hpp"
#include "ldpc/baseline/linear_approx.hpp"
#include "ldpc/baseline/min_sum.hpp"
#include "ldpc/channel/channel.hpp"
#include "ldpc/codes/registry.hpp"
#include "ldpc/enc/encoder.hpp"

namespace {

using namespace ldpc;
using baseline::boxminus;
using baseline::boxplus;
using codes::Rate;
using codes::Standard;

double boxplus_reference(double a, double b) {
  // Direct evaluation of log((1 + e^a e^b)/(e^a + e^b)) via tanh identity.
  return 2.0 * std::atanh(std::tanh(a / 2.0) * std::tanh(b / 2.0));
}

TEST(Boxplus, MatchesTanhFormula) {
  for (double a = -6.0; a <= 6.0; a += 0.7)
    for (double b = -6.0; b <= 6.0; b += 0.9) {
      if (std::abs(a) < 1e-9 || std::abs(b) < 1e-9) continue;
      EXPECT_NEAR(boxplus(a, b), boxplus_reference(a, b), 1e-9)
          << a << " " << b;
    }
}

TEST(Boxplus, Commutative) {
  EXPECT_DOUBLE_EQ(boxplus(1.3, -2.7), boxplus(-2.7, 1.3));
}

TEST(Boxplus, ZeroAnnihilates) {
  // boxplus(a, 0) = 0: a check with an erased participant gives no info.
  EXPECT_NEAR(boxplus(3.0, 0.0), 0.0, 1e-12);
}

TEST(Boxplus, MagnitudeBoundedByMin) {
  for (double a : {0.5, 2.0, 7.5})
    for (double b : {-0.7, 1.0, -4.0})
      EXPECT_LE(std::abs(boxplus(a, b)),
                std::min(std::abs(a), std::abs(b)) + 1e-12);
}

TEST(Boxplus, AssociativeWithinTolerance) {
  const double x = boxplus(boxplus(1.1, -2.2), 3.3);
  const double y = boxplus(1.1, boxplus(-2.2, 3.3));
  EXPECT_NEAR(x, y, 1e-9);
}

TEST(Boxminus, InvertsBoxplus) {
  for (double a = -5.0; a <= 5.0; a += 0.63)
    for (double b = -5.0; b <= 5.0; b += 0.77) {
      if (std::abs(a) < 0.05 || std::abs(b) < 0.05) continue;
      if (std::abs(std::abs(a) - std::abs(b)) < 0.05) continue;
      const double s = boxplus(a, b);
      EXPECT_NEAR(boxminus(s, b), a, 1e-6) << a << " " << b;
    }
}

TEST(Boxminus, DivergentPointSaturates) {
  EXPECT_DOUBLE_EQ(std::abs(boxminus(2.0, 2.0, 100.0)), 100.0);
}

TEST(MinsumKernel, UnderestimatesExactBoxplus) {
  // |min-sum| >= |exact| (min-sum overestimates reliability), which is why
  // normalisation alpha < 1 helps.
  for (double a : {0.8, 2.0, 5.0})
    for (double b : {1.1, 3.0}) {
      EXPECT_GE(std::abs(baseline::minsum_kernel(a, b)),
                std::abs(boxplus(a, b)));
    }
}

TEST(MinsumKernel, AlphaBetaApplied) {
  EXPECT_DOUBLE_EQ(baseline::minsum_kernel(3.0, -2.0, 0.75, 0.0), -1.5);
  EXPECT_DOUBLE_EQ(baseline::minsum_kernel(3.0, 2.0, 1.0, 0.5), 1.5);
  EXPECT_DOUBLE_EQ(baseline::minsum_kernel(0.2, 0.3, 1.0, 0.5), 0.0);
}

TEST(LinearCorrection, ApproximatesLog1pExp) {
  // max error of the max(0, log2 - x/4) fit is ~0.12 near x = 1.5.
  for (double x = 0.0; x <= 4.0; x += 0.25) {
    const double exact = std::log1p(std::exp(-x));
    EXPECT_NEAR(baseline::linear_correction(x), exact, 0.13) << x;
  }
}

TEST(BoxplusAll, FoldsSpan) {
  const std::vector<double> v{1.0, -2.0, 3.0};
  const double direct = boxplus(boxplus(1.0, -2.0), 3.0);
  EXPECT_NEAR(baseline::boxplus_all(v), direct, 1e-12);
  EXPECT_EQ(baseline::boxplus_all({}), 0.0);
}

// ---- decoder behaviour ----------------------------------------------------

struct Chain {
  codes::QCCode code;
  std::unique_ptr<enc::Encoder> encoder;
  util::Xoshiro256 rng;

  explicit Chain(const codes::CodeId& id, std::uint64_t seed = 99)
      : code(codes::make_code(id)), encoder(enc::make_encoder(code)),
        rng(seed) {}

  /// Returns (tx bits, channel LLRs) at the given Eb/N0.
  std::pair<std::vector<std::uint8_t>, std::vector<double>> frame(
      double ebn0_db) {
    std::vector<std::uint8_t> info(static_cast<std::size_t>(code.k_info()));
    enc::random_bits(rng, info);
    auto cw = encoder->encode(info);
    auto mod = channel::modulate(cw, channel::Modulation::kBpsk);
    const double sigma = channel::ebn0_to_sigma(ebn0_db, code.rate(),
                                                channel::Modulation::kBpsk);
    channel::AwgnChannel(sigma).transmit(mod.samples, rng);
    return {std::move(cw), channel::demap_llr(mod, sigma)};
  }
};

TEST(FloodingBP, DecodesCleanChannel) {
  Chain chain({Standard::kWimax80216e, Rate::kR12, 24});
  auto [cw, llr] = chain.frame(20.0);
  baseline::FloodingBP dec(chain.code);
  const auto res = dec.decode(llr, 10);
  EXPECT_TRUE(res.converged);
  EXPECT_EQ(res.iterations, 1);
  EXPECT_EQ(res.bits, cw);
}

TEST(FloodingBP, CorrectsErrorsAtModerateSnr) {
  Chain chain({Standard::kWimax80216e, Rate::kR12, 48});
  baseline::FloodingBP dec(chain.code);
  int decoded = 0;
  for (int f = 0; f < 10; ++f) {
    auto [cw, llr] = chain.frame(3.0);
    const auto res = dec.decode(llr, 50);
    decoded += (res.converged && res.bits == cw) ? 1 : 0;
  }
  EXPECT_EQ(decoded, 10);
}

TEST(LayeredBP, ConvergesFasterThanFlooding) {
  Chain chain({Standard::kWimax80216e, Rate::kR12, 48}, 7);
  baseline::FloodingBP flooding(chain.code);
  baseline::LayeredBP layered(chain.code);
  double it_flood = 0, it_layer = 0;
  const int frames = 20;
  for (int f = 0; f < frames; ++f) {
    auto [cw, llr] = chain.frame(2.5);
    const auto rf = flooding.decode(llr, 50);
    const auto rl = layered.decode(llr, 50);
    EXPECT_TRUE(rf.converged);
    EXPECT_TRUE(rl.converged);
    it_flood += rf.iterations;
    it_layer += rl.iterations;
  }
  // The paper's motivation for LBP: about half the iterations of flooding.
  EXPECT_LT(it_layer, it_flood * 0.75);
}

TEST(LayeredBP, InvalidParamsThrow) {
  const codes::QCCode code =
      codes::make_code({Standard::kWimax80216e, Rate::kR12, 24});
  EXPECT_THROW(baseline::LayeredBP(code, baseline::CheckKernel::kMinSum,
                                   0.0, 0.0),
               std::invalid_argument);
  EXPECT_THROW(baseline::LayeredBP(code, baseline::CheckKernel::kMinSum,
                                   1.0, -0.5),
               std::invalid_argument);
}

TEST(LayeredBP, LlrSizeValidated) {
  const codes::QCCode code =
      codes::make_code({Standard::kWimax80216e, Rate::kR12, 24});
  baseline::LayeredBP dec(code);
  std::vector<double> llr(3);
  EXPECT_THROW(dec.decode(llr, 5), std::invalid_argument);
}

TEST(MinSum, DecodesButNeedsMoreHelpThanBP) {
  // At a moderately low SNR, count frames where min-sum fails but BP
  // succeeds; expect BP at least as good.
  Chain chain({Standard::kWimax80216e, Rate::kR12, 48}, 31);
  baseline::LayeredBP bp(chain.code);
  baseline::MinSum ms(chain.code);
  int bp_ok = 0, ms_ok = 0;
  for (int f = 0; f < 30; ++f) {
    auto [cw, llr] = chain.frame(2.0);
    bp_ok += bp.decode(llr, 15).converged ? 1 : 0;
    ms_ok += ms.decode(llr, 15).converged ? 1 : 0;
  }
  EXPECT_GE(bp_ok, ms_ok);
  EXPECT_GT(bp_ok, 25);
}

TEST(MinSum, NormalizedBeatsPlainAtLowSnr) {
  Chain chain({Standard::kWimax80216e, Rate::kR12, 48}, 77);
  baseline::MinSum plain(chain.code);
  baseline::MinSum norm(chain.code, 0.75);
  double it_plain = 0, it_norm = 0;
  int ok_plain = 0, ok_norm = 0;
  for (int f = 0; f < 30; ++f) {
    auto [cw, llr] = chain.frame(2.2);
    auto rp = plain.decode(llr, 20);
    auto rn = norm.decode(llr, 20);
    ok_plain += rp.converged;
    ok_norm += rn.converged;
    it_plain += rp.iterations;
    it_norm += rn.iterations;
  }
  EXPECT_GE(ok_norm, ok_plain);
}

TEST(LinearApprox, CloseToExactBP) {
  Chain chain({Standard::kWimax80216e, Rate::kR12, 48}, 41);
  baseline::LayeredBP bp(chain.code);
  baseline::LinearApprox lin(chain.code);
  int bp_ok = 0, lin_ok = 0;
  for (int f = 0; f < 20; ++f) {
    auto [cw, llr] = chain.frame(2.5);
    bp_ok += bp.decode(llr, 20).converged ? 1 : 0;
    lin_ok += lin.decode(llr, 20).converged ? 1 : 0;
  }
  // Linear approximation should track BP within a small gap.
  EXPECT_GE(lin_ok, bp_ok - 2);
}

TEST(Decoders, NamesAreDescriptive) {
  const codes::QCCode code =
      codes::make_code({Standard::kWimax80216e, Rate::kR12, 24});
  EXPECT_EQ(baseline::FloodingBP(code).name(), "flooding-bp");
  EXPECT_EQ(baseline::LayeredBP(code).name(), "layered-full-bp");
  EXPECT_EQ(baseline::MinSum(code).name(), "layered-min-sum");
  EXPECT_NE(baseline::MinSum(code, 0.75).name().find("a=0.75"),
            std::string::npos);
  EXPECT_EQ(baseline::LinearApprox(code).name(), "layered-linear-approx");
}

TEST(Decoders, AllZeroLlrDoesNotCrash) {
  const codes::QCCode code =
      codes::make_code({Standard::kWimax80216e, Rate::kR12, 24});
  std::vector<double> llr(static_cast<std::size_t>(code.n()), 0.0);
  baseline::LayeredBP dec(code);
  const auto res = dec.decode(llr, 3);
  // All-zero LLR decodes to the all-zero codeword (hard decision of 0).
  EXPECT_TRUE(res.converged);
}

}  // namespace
