#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>

#include "ldpc/arch/circular_shifter.hpp"
#include "ldpc/arch/decoder_chip.hpp"
#include "ldpc/arch/frame_pipeline.hpp"
#include "ldpc/arch/memory.hpp"
#include "ldpc/arch/pipeline.hpp"
#include "ldpc/arch/throughput.hpp"
#include "ldpc/channel/channel.hpp"
#include "ldpc/codes/registry.hpp"
#include "ldpc/enc/encoder.hpp"

namespace {

using namespace ldpc;
using arch::ChipDimensions;
using arch::CircularShifter;
using arch::PipelineConfig;
using arch::PipelineModel;
using codes::Rate;
using codes::Standard;

// ---- circular shifter -------------------------------------------------------

TEST(CircularShifter, StageCountIsLog2) {
  EXPECT_EQ(CircularShifter(96).stages(), 7);
  EXPECT_EQ(CircularShifter(64).stages(), 6);
  EXPECT_EQ(CircularShifter(1).stages(), 0);
  EXPECT_EQ(CircularShifter(127).stages(), 7);
}

TEST(CircularShifter, RotatesWithinActiveLanes) {
  CircularShifter sh(8);
  std::vector<std::int32_t> in{10, 20, 30, 40, 50, -1, -1, -1};
  std::vector<std::int32_t> out(8, 99);
  sh.rotate(in, 2, 5, out);
  EXPECT_EQ(out[0], 30);
  EXPECT_EQ(out[4], 20);  // (4+2) mod 5 = 1
  EXPECT_EQ(out[5], 99);  // untouched beyond z
}

TEST(CircularShifter, ZeroShiftIsIdentity) {
  CircularShifter sh(16);
  std::vector<std::int32_t> in{1, 2, 3, 4};
  EXPECT_EQ(sh.rotate(in, 0), in);
}

TEST(CircularShifter, RotateBackInverts) {
  CircularShifter sh(96);
  std::vector<std::int32_t> in(96), fwd(96), back(96);
  std::iota(in.begin(), in.end(), 100);
  for (int shift : {0, 1, 17, 95}) {
    sh.rotate(in, shift, 96, fwd);
    sh.rotate_back(fwd, shift, 96, back);
    EXPECT_EQ(back, in) << shift;
  }
}

TEST(CircularShifter, InvalidArgsThrow) {
  CircularShifter sh(8);
  std::vector<std::int32_t> buf(8);
  EXPECT_THROW(CircularShifter(0), std::invalid_argument);
  EXPECT_THROW(sh.rotate(buf, 0, 9, buf), std::invalid_argument);
  EXPECT_THROW(sh.rotate(buf, 9, 8, buf), std::invalid_argument);
  EXPECT_THROW(sh.rotate(buf, -1, 8, buf), std::invalid_argument);
  EXPECT_THROW(sh.rotate_back(buf, 9, 8, buf), std::invalid_argument);
}

// ---- boundary shifts: 0, z-1, the full-cycle control word z, and z values
// that are not powers of two (the mux tree has spare span there) ------------

TEST(CircularShifter, BoundaryShiftsZeroAndFullCycle) {
  CircularShifter sh(96);
  std::vector<std::int32_t> in(96), out(96);
  std::iota(in.begin(), in.end(), -48);
  for (int z : {1, 24, 96}) {
    sh.rotate(in, 0, z, out);
    EXPECT_TRUE(std::equal(in.begin(), in.begin() + z, out.begin())) << z;
    // shift == z wraps the whole ring: identity, not an error.
    sh.rotate(in, z, z, out);
    EXPECT_TRUE(std::equal(in.begin(), in.begin() + z, out.begin())) << z;
    sh.rotate_back(in, z, z, out);
    EXPECT_TRUE(std::equal(in.begin(), in.begin() + z, out.begin())) << z;
  }
}

TEST(CircularShifter, MaximalShiftIsOneStepFromIdentity) {
  CircularShifter sh(96);
  std::vector<std::int32_t> in(96), out(96);
  std::iota(in.begin(), in.end(), 1000);
  const int z = 96;
  sh.rotate(in, z - 1, z, out);
  // out[i] = in[(i + z-1) mod z]: lane 0 sees in[z-1], lane 1 sees in[0].
  EXPECT_EQ(out[0], in[static_cast<std::size_t>(z - 1)]);
  EXPECT_EQ(out[1], in[0]);
  EXPECT_EQ(out[static_cast<std::size_t>(z - 1)],
            in[static_cast<std::size_t>(z - 2)]);
}

TEST(CircularShifter, NonPowerOfTwoLaneCountsInvert) {
  // z not a multiple of the power-of-two mux span (127, 96, 24, 5): the
  // forward/inverse pair must still be exact for every shift, including
  // the active-subset case z < z_max.
  CircularShifter sh(127);
  std::vector<std::int32_t> in(127), fwd(127), back(127);
  std::iota(in.begin(), in.end(), -63);
  for (int z : {5, 24, 96, 127}) {
    for (int shift = 0; shift <= z; ++shift) {
      sh.rotate(in, shift, z, fwd);
      sh.rotate_back(fwd, shift, z, back);
      EXPECT_TRUE(std::equal(in.begin(), in.begin() + z, back.begin()))
          << "z=" << z << " shift=" << shift;
    }
  }
}

TEST(CircularShifter, SingleLaneRingIsAlwaysIdentity) {
  CircularShifter sh(8);
  std::vector<std::int32_t> in{42}, out{0};
  sh.rotate(in, 0, 1, out);
  EXPECT_EQ(out[0], 42);
  sh.rotate(in, 1, 1, out);  // shift == z == 1
  EXPECT_EQ(out[0], 42);
}

TEST(CircularShifter, MuxCountForAreaModel) {
  EXPECT_EQ(CircularShifter(96).mux_count(), 7 * 96);
}

// ---- memories ---------------------------------------------------------------

TEST(LMemory, ReadWriteRoundTripAndStats) {
  arch::LMemory mem(4, 8);
  std::vector<std::int32_t> word{1, 2, 3, 4, 5, 6};
  mem.write(2, 6, word);
  std::vector<std::int32_t> out(6);
  mem.read(2, 6, out);
  EXPECT_EQ(out, word);
  EXPECT_EQ(mem.stats().reads, 1);
  EXPECT_EQ(mem.stats().writes, 1);
  mem.reset_stats();
  EXPECT_EQ(mem.stats().reads, 0);
}

TEST(LMemory, LaneAccessorsBypassStats) {
  arch::LMemory mem(2, 4);
  mem.set_lane(1, 3, -7);
  EXPECT_EQ(mem.lane(1, 3), -7);
  EXPECT_EQ(mem.stats().reads + mem.stats().writes, 0);
}

TEST(LMemory, BoundsChecked) {
  arch::LMemory mem(2, 4);
  std::vector<std::int32_t> buf(4);
  EXPECT_THROW(mem.read(2, 4, buf), std::out_of_range);
  EXPECT_THROW(mem.read(0, 5, buf), std::invalid_argument);
  EXPECT_THROW(mem.lane(0, 4), std::out_of_range);
}

TEST(LambdaBanks, ActivationGatesAccess) {
  arch::LambdaMemoryBanks banks(8, 4, 6);
  banks.activate(4);
  EXPECT_EQ(banks.active_banks(), 4);
  banks.write(3, 0, 0, 42);
  EXPECT_EQ(banks.read(3, 0, 0), 42);
  // Banks 4..7 are deactivated: the control logic must never touch them.
  EXPECT_THROW(banks.read(4, 0, 0), std::out_of_range);
  EXPECT_THROW(banks.write(7, 0, 0, 1), std::out_of_range);
}

TEST(LambdaBanks, ActivationClearsContents) {
  arch::LambdaMemoryBanks banks(4, 2, 3);
  banks.activate(4);
  banks.write(0, 1, 2, 99);
  banks.activate(4);
  EXPECT_EQ(banks.read(0, 1, 2), 0);
}

TEST(LambdaBanks, PerBankStats) {
  arch::LambdaMemoryBanks banks(4, 2, 3);
  banks.activate(2);
  banks.write(0, 0, 0, 1);
  banks.read(0, 0, 0);
  banks.read(1, 1, 1);
  EXPECT_EQ(banks.stats(0).reads, 1);
  EXPECT_EQ(banks.stats(0).writes, 1);
  EXPECT_EQ(banks.stats(1).reads, 1);
  EXPECT_EQ(banks.total_reads(), 2);
  EXPECT_EQ(banks.total_writes(), 1);
}

// ---- pipeline ---------------------------------------------------------------

TEST(Pipeline, StageCyclesMatchRadix) {
  const auto code = codes::make_code({Standard::kWimax80216e, Rate::kR12,
                                      96});
  PipelineModel r2(code, {.radix = core::Radix::kR2});
  PipelineModel r4(code, {.radix = core::Radix::kR4});
  for (int l = 0; l < code.block_rows(); ++l) {
    const int d = static_cast<int>(code.layers()[l].size());
    EXPECT_EQ(r2.stage_cycles(l), d);
    EXPECT_EQ(r4.stage_cycles(l), (d + 1) / 2);
  }
}

TEST(Pipeline, NoOverlapHasNoStalls) {
  const auto code = codes::make_code({Standard::kWimax80216e, Rate::kR12,
                                      96});
  PipelineModel model(code, {.overlap = false});
  const auto t = model.analyze_natural();
  EXPECT_EQ(t.total_stalls, 0);
  // Without overlap each layer pays both stages.
  long long expect = 0;
  for (int l = 0; l < code.block_rows(); ++l)
    expect += 2LL * model.stage_cycles(l);
  EXPECT_EQ(t.cycles_per_iteration, expect);
}

TEST(Pipeline, OverlapHalvesCyclesUpToStalls) {
  const auto code = codes::make_code({Standard::kWimax80216e, Rate::kR12,
                                      96});
  PipelineModel overlap(code, {.overlap = true});
  PipelineModel serial(code, {.overlap = false});
  const auto to = overlap.analyze_natural();
  const auto ts = serial.analyze_natural();
  EXPECT_LT(to.cycles_per_iteration, ts.cycles_per_iteration);
  EXPECT_EQ(to.cycles_per_iteration,
            ts.cycles_per_iteration / 2 + to.total_stalls);
}

TEST(Pipeline, ReorderingReducesStalls) {
  // The paper cites [10]: shuffling the layer order avoids stalls.
  const auto code = codes::make_code({Standard::kWimax80216e, Rate::kR12,
                                      96});
  PipelineModel model(code, {});
  const auto natural = model.analyze_natural();
  const auto optimized = model.analyze(model.optimize_order());
  EXPECT_LE(optimized.total_stalls, natural.total_stalls);
  EXPECT_GT(natural.total_stalls, 0);  // rate-1/2 layers share columns
}

TEST(Pipeline, AnalyzeValidatesPermutation) {
  const auto code = codes::make_code({Standard::kWimax80216e, Rate::kR12,
                                      24});
  PipelineModel model(code, {});
  std::vector<int> bad{0, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_THROW(model.analyze(bad), std::invalid_argument);
  std::vector<int> small{0, 1};
  EXPECT_THROW(model.analyze(small), std::invalid_argument);
}

TEST(Pipeline, ShifterLatencyWidensStallWindow) {
  // The pipelined shifter adds its depth to the read-after-write window,
  // showing up as extra stalls between overlapped layers (not as a flat
  // per-layer cost).
  const auto code = codes::make_code({Standard::kWimax80216e, Rate::kR12,
                                      96});
  PipelineModel with(code,
                     {.include_shifter_latency = true, .shifter_stages = 7});
  PipelineModel without(code, {});
  const auto tw = with.analyze_natural();
  const auto to = without.analyze_natural();
  EXPECT_GT(tw.total_stalls, to.total_stalls);
  EXPECT_EQ(tw.cycles_per_iteration - to.cycles_per_iteration,
            tw.total_stalls - to.total_stalls);
}

TEST(Pipeline, OptimizeOrderIsPermutation) {
  for (const auto& id :
       {codes::CodeId{Standard::kWimax80216e, Rate::kR56, 96},
        codes::CodeId{Standard::kDmbT, Rate::kR35, 127}}) {
    const auto code = codes::make_code(id);
    PipelineModel model(code, {});
    auto order = model.optimize_order();
    std::sort(order.begin(), order.end());
    for (int l = 0; l < code.block_rows(); ++l) EXPECT_EQ(order[l], l);
  }
}

// ---- throughput -------------------------------------------------------------

TEST(Throughput, FormulaMatchesPaperOneGbps) {
  // Paper headline: 1 Gbps pipelined R4 at 450 MHz. For 802.16e rate-1/2
  // z=96 (E=76, k=24): T = 2*24*96*0.5*450e6/(76*I). With I~10 that is
  // ~1.36 Gbps-per-iteration/13.6; the 1 Gbps figure corresponds to the
  // effective iteration count the chip sustains. Verify the formula value
  // itself and its scaling.
  const auto code = codes::make_code({Standard::kWimax80216e, Rate::kR12,
                                      96});
  const double t10 =
      arch::formula_throughput(code, core::Radix::kR4, 450e6, 10);
  const double expected = 2.0 * 24 * 96 * 0.5 * 450e6 /
                          (code.nonzero_blocks() * 10.0);
  EXPECT_DOUBLE_EQ(t10, expected);
  // Rate-5/6 hits >1 Gbps at 10 iterations (the multi-mode chip's peak).
  const auto high = codes::make_code({Standard::kWimax80216e, Rate::kR56,
                                      96});
  EXPECT_GT(arch::formula_throughput(high, core::Radix::kR4, 450e6, 10),
            1e9);
}

TEST(Throughput, R4DoublesR2) {
  const auto code = codes::make_code({Standard::kWlan80211n, Rate::kR12,
                                      81});
  EXPECT_DOUBLE_EQ(
      arch::formula_throughput(code, core::Radix::kR4, 450e6, 10),
      2.0 * arch::formula_throughput(code, core::Radix::kR2, 450e6, 10));
}

TEST(Throughput, ModeledWithinPaperDegradationBand) {
  // Section III-E: shifter latency (plus stalls) degrades throughput by
  // about 5-15%.
  const auto code = codes::make_code({Standard::kWimax80216e, Rate::kR12,
                                      96});
  PipelineConfig pc;
  pc.include_shifter_latency = true;
  pc.shifter_stages = 7;
  const auto report = arch::modeled_throughput(code, pc, 450e6, 10);
  EXPECT_GT(report.degradation, 0.03);
  EXPECT_LT(report.degradation, 0.25);
  EXPECT_LT(report.modeled_bps, report.formula_bps);
}

TEST(Throughput, InvalidParamsThrow) {
  const auto code = codes::make_code({Standard::kWimax80216e, Rate::kR12,
                                      24});
  EXPECT_THROW(arch::formula_throughput(code, core::Radix::kR4, 0, 10),
               std::invalid_argument);
  EXPECT_THROW(arch::formula_throughput(code, core::Radix::kR4, 1e6, 0),
               std::invalid_argument);
}

// ---- decoder chip -----------------------------------------------------------

struct ChipChain {
  codes::QCCode code;
  std::unique_ptr<enc::Encoder> encoder;
  util::Xoshiro256 rng;

  explicit ChipChain(const codes::CodeId& id, std::uint64_t seed = 1)
      : code(codes::make_code(id)), encoder(enc::make_encoder(code)),
        rng(seed) {}

  std::pair<std::vector<std::uint8_t>, std::vector<double>> frame(
      double ebn0_db) {
    std::vector<std::uint8_t> info(static_cast<std::size_t>(code.k_info()));
    enc::random_bits(rng, info);
    auto cw = encoder->encode(info);
    auto mod = channel::modulate(cw, channel::Modulation::kBpsk);
    const double sigma = channel::ebn0_to_sigma(ebn0_db, code.rate(),
                                                channel::Modulation::kBpsk);
    channel::AwgnChannel(sigma).transmit(mod.samples, rng);
    return {std::move(cw), channel::demap_llr(mod, sigma)};
  }
};

TEST(ChipDimensions, FitsChecksAllLimits) {
  const ChipDimensions paper{};  // z<=96, k<=24, j<=12
  EXPECT_TRUE(paper.fits(
      codes::make_code({Standard::kWimax80216e, Rate::kR12, 96})));
  EXPECT_TRUE(paper.fits(
      codes::make_code({Standard::kWlan80211n, Rate::kR56, 81})));
  EXPECT_FALSE(paper.fits(
      codes::make_code({Standard::kDmbT, Rate::kR35, 127})));
  EXPECT_TRUE(ChipDimensions::universal().fits(
      codes::make_code({Standard::kDmbT, Rate::kR25, 127})));
  // The paper chip cannot host NR (68 block columns, z up to 384); the
  // universal dimensions host every registered mode of every standard.
  EXPECT_FALSE(paper.fits(
      codes::make_code({Standard::kNr5g, codes::Rate::kR13, 96})));
  for (const auto& id : codes::all_modes())
    EXPECT_TRUE(ChipDimensions::universal().fits(codes::make_code(id)))
        << to_string(id);
}

TEST(DecoderChip, MatchesFunctionalDecoderBitExactly) {
  // The structural model (memories + shifter + banks) must reproduce the
  // functional decoder exactly when running the same layer order. This
  // validates the shifter routing and bank addressing.
  ChipChain chain({Standard::kWimax80216e, Rate::kR34A, 48}, 77);
  core::DecoderConfig cfg{.max_iterations = 5};
  arch::DecoderChip chip({}, cfg);
  chip.configure(chain.code);
  std::vector<int> natural(chain.code.block_rows());
  std::iota(natural.begin(), natural.end(), 0);
  chip.set_layer_order(natural);
  core::ReconfigurableDecoder functional(chain.code, cfg);

  for (int f = 0; f < 5; ++f) {
    auto [cw, llr] = chain.frame(3.0);
    const auto rc = chip.decode(llr);
    const auto rf = functional.decode(llr);
    EXPECT_EQ(rc.functional.bits, rf.bits) << "frame " << f;
    EXPECT_EQ(rc.functional.iterations, rf.iterations);
  }
}

TEST(DecoderChip, DecodesWithOptimizedOrder) {
  ChipChain chain({Standard::kWimax80216e, Rate::kR12, 96}, 31);
  arch::DecoderChip chip({}, {.stop_on_codeword = true});
  chip.configure(chain.code);
  for (int f = 0; f < 3; ++f) {
    auto [cw, llr] = chain.frame(3.0);
    const auto r = chip.decode(llr);
    EXPECT_TRUE(r.functional.converged);
    EXPECT_EQ(r.functional.bits, cw);
  }
}

TEST(DecoderChip, CountsMemoryAccesses) {
  ChipChain chain({Standard::kWimax80216e, Rate::kR12, 24}, 5);
  arch::DecoderChip chip({}, {.max_iterations = 1});
  chip.configure(chain.code);
  auto [cw, llr] = chain.frame(8.0);
  const auto r = chip.decode(llr);
  const long long e = chain.code.nonzero_blocks();
  // Per iteration: one L read + one L write per non-zero block.
  EXPECT_EQ(r.stats.l_mem_reads, e);
  EXPECT_EQ(r.stats.l_mem_writes, e);
  // Each of z SISO lanes reads and writes one Lambda message per block.
  EXPECT_EQ(r.stats.lambda_reads, e * 24);
  EXPECT_EQ(r.stats.lambda_writes, e * 24);
  // Every block's L word crosses the shifter twice (forward + inverse).
  EXPECT_EQ(r.stats.shifter_words, 2 * e);
  EXPECT_EQ(r.stats.active_sisos, 24);
  EXPECT_EQ(r.stats.idle_sisos, 96 - 24);
  EXPECT_GT(r.stats.cycles, 0);
}

TEST(DecoderChip, ReconfiguresAcrossStandards) {
  ChipChain wimax({Standard::kWimax80216e, Rate::kR12, 96}, 11);
  ChipChain wlan({Standard::kWlan80211n, Rate::kR34, 81}, 12);
  arch::DecoderChip chip({}, {.stop_on_codeword = true});
  for (int round = 0; round < 2; ++round) {
    chip.configure(wimax.code);
    auto [cw1, llr1] = wimax.frame(3.0);
    EXPECT_EQ(chip.decode(llr1).functional.bits, cw1);
    chip.configure(wlan.code);
    auto [cw2, llr2] = wlan.frame(4.0);
    EXPECT_EQ(chip.decode(llr2).functional.bits, cw2);
  }
}

TEST(DecoderChip, RejectsOversizedCode) {
  arch::DecoderChip chip({}, {});
  const auto big = codes::make_code({Standard::kDmbT, Rate::kR35, 127});
  EXPECT_THROW(chip.configure(big), std::invalid_argument);
}

TEST(DecoderChip, UniversalDimensionsHostDmbt) {
  ChipChain chain({Standard::kDmbT, Rate::kR35, 127}, 21);
  arch::DecoderChip chip(ChipDimensions::universal(),
                         {.stop_on_codeword = true});
  chip.configure(chain.code);
  auto [cw, llr] = chain.frame(4.0);
  const auto r = chip.decode(llr);
  EXPECT_TRUE(r.functional.converged);
  EXPECT_EQ(r.functional.bits, cw);
}

// Structural-vs-functional equivalence across a spread of modes: the
// memory/shifter plumbing must be invisible to the arithmetic everywhere.
class ChipEquivalence : public ::testing::TestWithParam<codes::CodeId> {};

TEST_P(ChipEquivalence, MatchesFunctionalDecoder) {
  ChipChain chain(GetParam(), 0xC41B + GetParam().z);
  core::DecoderConfig cfg{.max_iterations = 4};
  arch::DecoderChip chip(arch::ChipDimensions::universal(), cfg);
  chip.configure(chain.code);
  std::vector<int> natural(chain.code.block_rows());
  std::iota(natural.begin(), natural.end(), 0);
  chip.set_layer_order(natural);
  core::ReconfigurableDecoder functional(chain.code, cfg);
  for (int f = 0; f < 2; ++f) {
    auto [cw, llr] = chain.frame(2.5);
    EXPECT_EQ(chip.decode(llr).functional.bits, functional.decode(llr).bits)
        << chain.code.name();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Spread, ChipEquivalence,
    ::testing::Values(
        codes::CodeId{Standard::kWimax80216e, Rate::kR12, 96},
        codes::CodeId{Standard::kWimax80216e, Rate::kR23A, 40},
        codes::CodeId{Standard::kWimax80216e, Rate::kR23B, 68},
        codes::CodeId{Standard::kWimax80216e, Rate::kR34A, 52},
        codes::CodeId{Standard::kWimax80216e, Rate::kR34B, 84},
        codes::CodeId{Standard::kWimax80216e, Rate::kR56, 28},
        codes::CodeId{Standard::kWlan80211n, Rate::kR12, 27},
        codes::CodeId{Standard::kWlan80211n, Rate::kR23, 54},
        codes::CodeId{Standard::kWlan80211n, Rate::kR34, 81},
        codes::CodeId{Standard::kWlan80211n, Rate::kR56, 54},
        codes::CodeId{Standard::kDmbT, Rate::kR25, 127},
        codes::CodeId{Standard::kDmbT, Rate::kR45, 127}),
    [](const auto& info) {
      std::string n = to_string(info.param);
      for (char& c : n)
        if (!isalnum(static_cast<unsigned char>(c))) c = '_';
      return n;
    });

TEST(DecoderChip, UnconfiguredUseThrows) {
  arch::DecoderChip chip({}, {});
  std::vector<double> llr(10);
  EXPECT_THROW(chip.decode(llr), std::logic_error);
  EXPECT_THROW(chip.code(), std::logic_error);
}

// ---- frame pipeline (In/Out buffer, Fig. 8) ---------------------------------

TEST(FramePipeline, AccountsDecodeAndIo) {
  ChipChain chain({Standard::kWimax80216e, Rate::kR12, 96}, 61);
  arch::DecoderChip chip({}, {.max_iterations = 5});
  arch::FramePipeline pipe(chip, {.io_bits_per_cycle = 64,
                                  .reconfigure_cycles = 32});
  auto [cw, llr] = chain.frame(3.0);
  pipe.decode_frame(chain.code, llr);
  const auto& s = pipe.stats();
  EXPECT_EQ(s.frames, 1);
  EXPECT_EQ(s.reconfigurations, 1);
  EXPECT_GT(s.decode_cycles, 0);
  // Input: 2304 transmitted LLRs x 8 bits; output: the 1152 payload hard
  // decisions (parity stays on chip); 64 bits per cycle.
  EXPECT_EQ(s.io_cycles, (2304LL * 8 + 1152 + 63) / 64);
  // Degenerate scheme: payload == k_info, so classic accounting is
  // unchanged by the scheme-aware ledger.
  EXPECT_EQ(pipe.payload_bits(), chain.code.k_info());
  EXPECT_EQ(s.payload_bits, chain.code.payload_bits());
}

TEST(FramePipeline, NoReconfigurationForSameCode) {
  ChipChain chain({Standard::kWimax80216e, Rate::kR12, 96}, 62);
  arch::DecoderChip chip({}, {.max_iterations = 3});
  arch::FramePipeline pipe(chip);
  for (int f = 0; f < 3; ++f) {
    auto [cw, llr] = chain.frame(3.0);
    pipe.decode_frame(chain.code, llr);
  }
  EXPECT_EQ(pipe.stats().reconfigurations, 1);  // only the first frame
  EXPECT_EQ(pipe.stats().frames, 3);
}

TEST(FramePipeline, ReconfiguresOnCodeSwitch) {
  ChipChain a({Standard::kWimax80216e, Rate::kR12, 96}, 63);
  ChipChain b({Standard::kWlan80211n, Rate::kR34, 81}, 64);
  arch::DecoderChip chip({}, {.max_iterations = 3});
  arch::FramePipeline pipe(chip);
  for (int round = 0; round < 2; ++round) {
    auto [cw1, llr1] = a.frame(3.0);
    pipe.decode_frame(a.code, llr1);
    auto [cw2, llr2] = b.frame(4.0);
    pipe.decode_frame(b.code, llr2);
  }
  EXPECT_EQ(pipe.stats().reconfigurations, 4);  // every frame switches
}

TEST(FramePipeline, UtilizationHighWhenDecodeBound) {
  // Long decode (10 iterations) vs wide bus: the core should dominate.
  ChipChain chain({Standard::kWimax80216e, Rate::kR12, 96}, 65);
  arch::DecoderChip chip({}, {.max_iterations = 10});
  arch::FramePipeline pipe(chip, {.io_bits_per_cycle = 128,
                                  .reconfigure_cycles = 0});
  for (int f = 0; f < 3; ++f) {
    auto [cw, llr] = chain.frame(3.0);
    pipe.decode_frame(chain.code, llr);
  }
  EXPECT_GT(pipe.stats().core_utilization(), 0.9);
  EXPECT_GT(pipe.stats().sustained_bps(450e6), 0.0);
}

TEST(FramePipeline, StallsWhenIoBound) {
  // A 1-bit-per-cycle interface starves the core.
  ChipChain chain({Standard::kWimax80216e, Rate::kR12, 24}, 66);
  arch::DecoderChip chip({}, {.max_iterations = 1});
  arch::FramePipeline pipe(chip, {.io_bits_per_cycle = 1,
                                  .reconfigure_cycles = 0});
  auto [cw, llr] = chain.frame(6.0);
  pipe.decode_frame(chain.code, llr);
  EXPECT_GT(pipe.stats().stall_cycles, 0);
  EXPECT_LT(pipe.stats().core_utilization(), 0.5);
}

TEST(FramePipeline, InvalidConfigThrows) {
  arch::DecoderChip chip({}, {});
  EXPECT_THROW(arch::FramePipeline(chip, {.io_bits_per_cycle = 0}),
               std::invalid_argument);
  EXPECT_THROW(arch::FramePipeline(chip, {.reconfigure_cycles = -1}),
               std::invalid_argument);
}

// ---- shifter capacity bounds: z_max = 2 up to the NR maximum 384 ------------
// The logarithmic tree was only ever exercised at the paper's z_max = 96;
// these lock its structural figures and routing at both extremes.

TEST(CircularShifter, StageCountAtCapacityBounds) {
  EXPECT_EQ(CircularShifter(2).stages(), 1);
  EXPECT_EQ(CircularShifter(2).mux_count(), 2);
  EXPECT_EQ(CircularShifter(256).stages(), 8);
  EXPECT_EQ(CircularShifter(384).stages(), 9);  // ceil(log2 384)
  EXPECT_EQ(CircularShifter(384).mux_count(), 9LL * 384);
}

TEST(CircularShifter, ZMax2BoundaryShifts) {
  CircularShifter sh(2);
  std::vector<std::int32_t> in{7, -9}, out(2, 0);
  sh.rotate(in, 1, 2, out);
  EXPECT_EQ(out, (std::vector<std::int32_t>{-9, 7}));
  sh.rotate(in, 2, 2, out);  // full-cycle control word: identity
  EXPECT_EQ(out, in);
  sh.rotate_back(in, 1, 2, out);
  EXPECT_EQ(out, (std::vector<std::int32_t>{-9, 7}));
  // Single active lane under the 2-lane tree.
  sh.rotate(in, 1, 1, out);
  EXPECT_EQ(out[0], 7);
  EXPECT_THROW(sh.rotate(in, 3, 2, out), std::invalid_argument);
}

TEST(CircularShifter, ZMax384NonPowerOfTwoActiveWidths) {
  CircularShifter sh(384);
  std::vector<std::int32_t> in(384), fwd(384, 0), back(384, 0);
  std::iota(in.begin(), in.end(), -100);
  // Non-power-of-two active widths under the 384-lane tree (NR lifting
  // sizes), including the full word.
  for (const int z : {3, 36, 52, 208, 384}) {
    for (const int shift : {0, 1, z / 2, z - 1, z}) {
      sh.rotate(in, shift, z, fwd);
      for (int i = 0; i < z; ++i)
        ASSERT_EQ(fwd[static_cast<std::size_t>(i)],
                  in[static_cast<std::size_t>((i + shift) % z)])
            << "z=" << z << " shift=" << shift << " lane " << i;
      sh.rotate_back(fwd, shift, z, back);
      EXPECT_TRUE(std::equal(in.begin(), in.begin() + z, back.begin()))
          << "z=" << z << " shift=" << shift;
    }
  }
}

// A z = 384 NR mode through the full structural chip at universal
// dimensions: the chip must agree with the functional decoder bit for bit
// (the 384-lane shifter, 68-word L-memory and 46-layer banks all at their
// limits).
TEST(DecoderChip, HostsNrAtMaximumLifting) {
  const auto code = codes::make_code(
      {Standard::kNr5g, codes::Rate::kR13, 384});
  const core::DecoderConfig cfg{.max_iterations = 2};
  arch::DecoderChip chip(ChipDimensions::universal(), cfg);
  chip.configure(code);
  std::vector<int> natural(static_cast<std::size_t>(code.block_rows()));
  std::iota(natural.begin(), natural.end(), 0);
  chip.set_layer_order(natural);
  core::ReconfigurableDecoder functional(code, cfg);

  util::Xoshiro256 rng(384);
  std::vector<double> tx(static_cast<std::size_t>(code.transmitted_bits()));
  for (auto& x : tx) x = 8.0 * (rng.uniform() - 0.5);
  const auto rc = chip.decode(tx);
  const auto rf = functional.decode(tx);
  EXPECT_EQ(rc.functional.bits, rf.bits);
  EXPECT_EQ(rc.stats.active_sisos, 384);
  EXPECT_EQ(rc.stats.idle_sisos, ChipDimensions::universal().z_max - 384);
}

// ---- scheme-aware frame-pipeline I/O accounting (NR modes) ------------------
// The In/Out buffer must move transmitted_bits() soft words in and
// payload_bits() hard decisions out. Before the fix the model assumed
// codeword-length frames (n soft words in, n bits out), so NR rate-matched
// modes over/under-counted I/O stalls and filler modes inflated the
// delivered payload.

std::vector<double> random_llrs(int count, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<double> llr(static_cast<std::size_t>(count));
  for (auto& x : llr) x = 8.0 * (rng.uniform() - 0.5);
  return llr;
}

TEST(FramePipeline, NrRateMatchedIoAccounting) {
  // BG1 z=96: n = 6528, sendable = n - 2z = 6336. Exercise both a
  // shortened (E < sendable) and a wraparound-repeated (E > sendable)
  // transmission: the interface moves exactly E soft words either way.
  for (const int e_bits : {4000, 7000}) {
    const auto code =
        codes::make_nr_code(codes::Rate::kR13, 96, e_bits, 0);
    ASSERT_EQ(code.transmitted_bits(), e_bits);
    arch::DecoderChip chip(ChipDimensions::universal(),
                           {.max_iterations = 2});
    arch::FramePipeline pipe(chip, {.io_bits_per_cycle = 64,
                                    .reconfigure_cycles = 32});
    pipe.decode_frame(code, random_llrs(e_bits, 0xE0 + e_bits));
    const int msg_bits = chip.decoder_config().format.total_bits();
    const long long payload = code.payload_bits();  // 22 * 96, no fillers
    EXPECT_EQ(payload, 2112);
    EXPECT_EQ(pipe.stats().io_cycles,
              (static_cast<long long>(e_bits) * msg_bits + payload + 63) /
                  64)
        << "E=" << e_bits;
    EXPECT_EQ(pipe.stats().payload_bits, payload);
  }
}

TEST(FramePipeline, NrFillerModeAccounting) {
  // 128 filler bits shrink both the sendable circular buffer and the
  // delivered payload; neither crosses the chip interface.
  const auto code = codes::make_nr_code(codes::Rate::kR13, 96, 0, 128);
  const long long tx = code.transmitted_bits();  // 6528 - 192 - 128
  ASSERT_EQ(tx, 6208);
  ASSERT_EQ(code.payload_bits(), 2112 - 128);
  arch::DecoderChip chip(ChipDimensions::universal(), {.max_iterations = 2});
  arch::FramePipeline pipe(chip, {.io_bits_per_cycle = 64,
                                  .reconfigure_cycles = 32});
  pipe.decode_frame(code, random_llrs(static_cast<int>(tx), 0xF1));
  const int msg_bits = chip.decoder_config().format.total_bits();
  EXPECT_EQ(pipe.stats().io_cycles,
            (tx * msg_bits + code.payload_bits() + 63) / 64);
  EXPECT_EQ(pipe.stats().payload_bits, code.payload_bits());
  EXPECT_EQ(pipe.payload_bits(), 2112 - 128);
}

TEST(FramePipelineStats, MergeAccumulatesEveryField) {
  arch::FramePipelineStats a{.frames = 2, .decode_cycles = 100,
                             .io_cycles = 40, .stall_cycles = 8,
                             .reconfigurations = 1, .payload_bits = 2304};
  const arch::FramePipelineStats b{.frames = 3, .decode_cycles = 50,
                                   .io_cycles = 70, .stall_cycles = 25,
                                   .reconfigurations = 2,
                                   .payload_bits = 1000};
  a.merge(b);
  EXPECT_EQ(a.frames, 5);
  EXPECT_EQ(a.decode_cycles, 150);
  EXPECT_EQ(a.io_cycles, 110);
  EXPECT_EQ(a.stall_cycles, 33);
  EXPECT_EQ(a.reconfigurations, 3);
  EXPECT_EQ(a.payload_bits, 3304);
  EXPECT_EQ(a.elapsed_cycles(), 183);
}

TEST(FramePipeline, BurstMatchesPerFrameAccounting) {
  // decode_burst = one reconfiguration + the batch datapath; results and
  // the stats ledger must equal a decode_frame loop over the same frames.
  ChipChain chain({Standard::kWimax80216e, Rate::kR12, 24}, 91);
  const core::DecoderConfig cfg{.max_iterations = 3};
  arch::DecoderChip chip_a({}, cfg), chip_b({}, cfg);
  arch::FramePipeline one_by_one(chip_a), burst_pipe(chip_b);

  const int frames = 5;
  const auto tx = static_cast<std::size_t>(chain.code.transmitted_bits());
  std::vector<double> llrs(tx * frames);
  for (int f = 0; f < frames; ++f) {
    auto [cw, llr] = chain.frame(3.0);
    std::copy(llr.begin(), llr.end(),
              llrs.begin() + static_cast<std::ptrdiff_t>(f * tx));
  }

  std::vector<std::vector<std::uint8_t>> single_bits;
  for (int f = 0; f < frames; ++f)
    single_bits.push_back(
        one_by_one
            .decode_frame(chain.code,
                          std::span<const double>(llrs).subspan(f * tx, tx))
            .functional.bits);
  const auto burst = burst_pipe.decode_burst(chain.code, llrs);

  ASSERT_EQ(burst.frames.size(), static_cast<std::size_t>(frames));
  for (int f = 0; f < frames; ++f)
    EXPECT_EQ(burst.frames[static_cast<std::size_t>(f)].functional.bits,
              single_bits[static_cast<std::size_t>(f)])
        << "frame " << f;
  // Same code throughout: both paths reconfigure once, so every ledger
  // field matches and the per-frame elapsed shares sum to the total.
  EXPECT_EQ(burst_pipe.stats().frames, one_by_one.stats().frames);
  EXPECT_EQ(burst_pipe.stats().decode_cycles,
            one_by_one.stats().decode_cycles);
  EXPECT_EQ(burst_pipe.stats().io_cycles, one_by_one.stats().io_cycles);
  EXPECT_EQ(burst_pipe.stats().stall_cycles,
            one_by_one.stats().stall_cycles);
  EXPECT_EQ(burst_pipe.stats().reconfigurations,
            one_by_one.stats().reconfigurations);
  EXPECT_EQ(burst_pipe.stats().payload_bits,
            one_by_one.stats().payload_bits);
  long long elapsed = 0;
  for (const long long c : burst.frame_elapsed_cycles) elapsed += c;
  EXPECT_EQ(elapsed, burst_pipe.stats().elapsed_cycles());
}

TEST(FramePipeline, WideMixedIterationBurstAccountingMatchesPerFrame) {
  // A burst far wider than any SIMD lane width, with early termination
  // and codeword stopping on so frames retire at different iterations and
  // the continuous engine refills lanes mid-flight. The modeled chip is a
  // serial device: host-side lane parallelism must never leak into the
  // cycle ledger, so every stat and every per-frame elapsed share must
  // still equal a decode_frame loop.
  ChipChain chain({Standard::kWimax80216e, Rate::kR12, 96}, 17);
  core::DecoderConfig cfg;
  cfg.max_iterations = 10;
  cfg.kernel = core::CnuKernel::kMinSum;
  cfg.stop_on_codeword = true;
  cfg.early_termination.enabled = true;
  arch::DecoderChip chip_a({}, cfg), chip_b({}, cfg);
  arch::FramePipeline one_by_one(chip_a), burst_pipe(chip_b);

  const int frames = 40;
  const auto tx = static_cast<std::size_t>(chain.code.transmitted_bits());
  std::vector<double> llrs(tx * frames);
  for (int f = 0; f < frames; ++f) {
    // Alternate hard and easy frames: high iteration variance.
    auto [cw, llr] = chain.frame(f % 2 ? 4.5 : 1.0);
    std::copy(llr.begin(), llr.end(),
              llrs.begin() + static_cast<std::ptrdiff_t>(f * tx));
  }

  std::vector<arch::ChipDecodeResult> single;
  for (int f = 0; f < frames; ++f)
    single.push_back(one_by_one.decode_frame(
        chain.code, std::span<const double>(llrs).subspan(f * tx, tx)));
  const auto burst = burst_pipe.decode_burst(chain.code, llrs);

  ASSERT_EQ(burst.frames.size(), static_cast<std::size_t>(frames));
  std::set<int> iteration_mix;
  for (int f = 0; f < frames; ++f) {
    const auto& b = burst.frames[static_cast<std::size_t>(f)];
    const auto& s = single[static_cast<std::size_t>(f)];
    EXPECT_EQ(b.functional.bits, s.functional.bits) << "frame " << f;
    EXPECT_EQ(b.functional.iterations, s.functional.iterations)
        << "frame " << f;
    EXPECT_EQ(b.stats.cycles, s.stats.cycles) << "frame " << f;
    iteration_mix.insert(b.functional.iterations);
  }
  // The workload must actually be mixed-iteration, or this test would
  // never exercise a mid-flight refill.
  EXPECT_GE(iteration_mix.size(), 2u);
  EXPECT_EQ(burst_pipe.stats().frames, one_by_one.stats().frames);
  EXPECT_EQ(burst_pipe.stats().decode_cycles,
            one_by_one.stats().decode_cycles);
  EXPECT_EQ(burst_pipe.stats().io_cycles, one_by_one.stats().io_cycles);
  EXPECT_EQ(burst_pipe.stats().stall_cycles,
            one_by_one.stats().stall_cycles);
  EXPECT_EQ(burst_pipe.stats().payload_bits,
            one_by_one.stats().payload_bits);
  long long elapsed = 0;
  for (const long long c : burst.frame_elapsed_cycles) elapsed += c;
  EXPECT_EQ(elapsed, burst_pipe.stats().elapsed_cycles());
}

TEST(Throughput, FillerModePayloadRegression) {
  // Same base graph and lifting: identical cycle model, but the filler
  // mode delivers fewer payload bits per frame. Counting k_info would
  // report the two modes at the same throughput.
  const auto full = codes::make_nr_code(codes::Rate::kR13, 96);
  const auto filler = codes::make_nr_code(codes::Rate::kR13, 96, 0, 128);
  PipelineConfig pc;
  pc.include_shifter_latency = true;
  pc.shifter_stages = 9;
  const auto rep_full = arch::modeled_throughput(full, pc, 450e6, 10);
  const auto rep_filler = arch::modeled_throughput(filler, pc, 450e6, 10);
  EXPECT_EQ(rep_full.cycles_per_frame, rep_filler.cycles_per_frame);
  EXPECT_LT(rep_filler.modeled_bps, rep_full.modeled_bps);
  EXPECT_DOUBLE_EQ(rep_filler.modeled_bps * full.payload_bits(),
                   rep_full.modeled_bps * filler.payload_bits());
}

TEST(Throughput, DegenerateSchemeNumericallyUnchanged) {
  // Classic standards: payload_bits() == k_info(), so the payload-aware
  // formula reproduces the pre-fix value exactly.
  for (const auto& id :
       {codes::CodeId{Standard::kWimax80216e, Rate::kR12, 96},
        codes::CodeId{Standard::kWlan80211n, Rate::kR34, 81},
        codes::CodeId{Standard::kDmbT, Rate::kR35, 127}}) {
    const auto code = codes::make_code(id);
    ASSERT_EQ(code.payload_bits(), code.k_info()) << to_string(id);
    const auto rep = arch::modeled_throughput(code, {}, 450e6, 10);
    EXPECT_DOUBLE_EQ(
        rep.modeled_bps,
        static_cast<double>(code.k_info()) * 450e6 /
            static_cast<double>(rep.cycles_per_frame))
        << to_string(id);
  }
}

}  // namespace
