// The live-service test battery: per-frame result determinism against the
// modeled scheduler, MPMC-queue/work-stealing concurrency stress (run
// under TSan in CI), and SLO/backpressure behaviour.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "ldpc/codes/registry.hpp"
#include "ldpc/stream/decode_service.hpp"
#include "ldpc/stream/mpmc_queue.hpp"
#include "ldpc/stream/scheduler.hpp"
#include "ldpc/stream/traffic.hpp"

namespace {

using namespace ldpc;
using codes::Rate;
using codes::Standard;
using stream::Admission;
using stream::BoundedMpmcQueue;
using stream::DecodeService;
using stream::Policy;
using stream::ServiceConfig;
using stream::ServiceRequest;
using stream::StreamScheduler;
using stream::TrafficClass;
using stream::TrafficSource;

// Mirrors test_stream.cpp's mixed 4-standard mix; the service requires a
// min-sum kernel (the StreamBatchEngine contract), so the decoder config
// sets it explicitly — and the modeled reference runs the SAME config.
TrafficSource make_mixed_source(std::uint64_t seed) {
  TrafficSource src({.seed = seed});
  src.add_mode(codes::make_code({Standard::kWimax80216e, Rate::kR12, 24}),
               3.0, 2.0);
  src.add_mode(codes::make_code({Standard::kWlan80211n, Rate::kR12, 27}),
               3.0, 1.0);
  src.add_mode(codes::make_code({Standard::kDmbT, Rate::kR25, 127}), 4.0,
               1.0);
  src.add_mode(codes::make_nr_code(Rate::kR15, 16), 2.0, 1.0);
  return src;
}

core::DecoderConfig service_decoder() {
  core::DecoderConfig cfg;
  cfg.kernel = core::CnuKernel::kMinSum;
  cfg.max_iterations = 3;
  cfg.stop_on_codeword = true;
  return cfg;
}

// A job with its frame pre-synthesized: TrafficSource::make_frame is not
// thread-safe, so the submitter owns synthesis (as a real device driver
// owns its sampled LLRs) and the service only ever sees buffers.
struct SynthJob {
  stream::Job job;
  stream::JobFrame frame;
};

std::vector<SynthJob> synthesize(TrafficSource& src, int count) {
  std::vector<SynthJob> jobs;
  jobs.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    SynthJob s;
    s.job = src.next();
    s.frame = src.make_frame(s.job);
    jobs.push_back(std::move(s));
  }
  return jobs;
}

ServiceRequest request_for(const TrafficSource& src, const SynthJob& s,
                           TrafficClass cls = TrafficClass::kBestEffort) {
  ServiceRequest req;
  req.id = s.job.id;
  req.mode = s.job.mode;
  req.cls = cls;
  req.llrs = s.frame.llrs;
  const auto payload =
      static_cast<std::size_t>(src.code(s.job.mode).payload_bits());
  req.expected_payload.assign(s.frame.codeword.begin(),
                              s.frame.codeword.begin() +
                                  static_cast<std::ptrdiff_t>(payload));
  return req;
}

// The single-threaded modeled reference for a given seed: what every
// service configuration must reproduce bit for bit.
stream::StreamReport modeled_reference(std::uint64_t seed, int njobs) {
  auto src = make_mixed_source(seed);
  stream::SchedulerConfig cfg;
  cfg.workers = 1;
  cfg.policy = Policy::kFifo;
  cfg.decoder = service_decoder();
  StreamScheduler sched(src, cfg);
  return sched.run(njobs);
}

stream::StreamReport run_service(std::uint64_t seed, int njobs,
                                 ServiceConfig cfg) {
  auto src = make_mixed_source(seed);
  const auto jobs = synthesize(src, njobs);
  DecodeService service(src, cfg);
  for (const auto& s : jobs)
    EXPECT_TRUE(service.submit(request_for(src, s)));
  return service.finish();
}

void expect_matches_reference(const stream::StreamReport& got,
                              const stream::StreamReport& want,
                              const std::string& label) {
  ASSERT_EQ(got.jobs.size(), want.jobs.size()) << label;
  for (std::size_t i = 0; i < got.jobs.size(); ++i) {
    const auto& g = got.jobs[i];
    const auto& w = want.jobs[i];
    ASSERT_EQ(g.id, w.id) << label << " job " << i;
    EXPECT_EQ(g.mode, w.mode) << label << " job " << i;
    EXPECT_EQ(g.decision_hash, w.decision_hash) << label << " job " << i;
    EXPECT_EQ(g.iterations, w.iterations) << label << " job " << i;
    EXPECT_EQ(g.converged, w.converged) << label << " job " << i;
    EXPECT_EQ(g.payload_ok, w.payload_ok) << label << " job " << i;
  }
}

// ---- determinism battery ----------------------------------------------------
// The tentpole guarantee: per-frame hard-decision hashes and iteration
// counts from the live multi-threaded service are bit-identical to the
// modeled single-threaded scheduler for the same traffic, at every worker
// count, steal configuration and queue capacity. Thread interleaving may
// only move work in time.

TEST(DecodeServiceDeterminism, MatchesModeledSchedulerAcrossWorkerCounts) {
  const std::uint64_t seed = 0xD15C0;
  const int njobs = 48;
  const auto reference = modeled_reference(seed, njobs);
  ASSERT_EQ(reference.jobs.size(), static_cast<std::size_t>(njobs));
  for (const int workers : {1, 2, 4, 8}) {
    ServiceConfig cfg;
    cfg.workers = workers;
    cfg.queue_capacity = 16;
    cfg.work_stealing = true;
    cfg.decoder = service_decoder();
    const auto report = run_service(seed, njobs, cfg);
    expect_matches_reference(report, reference,
                             "workers=" + std::to_string(workers));
  }
}

TEST(DecodeServiceDeterminism, QuantisedSubmissionMatchesModeledScheduler) {
  // The quantised-domain serving path: the source pre-quantises every
  // frame (sim::quantise_llrs under the service's decoder config), the
  // submitter ships ONLY the raw codes, and per-frame results must still
  // equal the modeled double-LLR reference bit for bit — including mixed
  // bins, since every odd job keeps submitting doubles.
  const std::uint64_t seed = 0xD15C1;
  const int njobs = 48;
  const auto reference = modeled_reference(seed, njobs);
  ASSERT_EQ(reference.jobs.size(), static_cast<std::size_t>(njobs));
  for (const int workers : {1, 4}) {
    auto src = make_mixed_source(seed);
    src.emit_quantised(service_decoder());
    ASSERT_TRUE(src.emits_quantised());
    const auto jobs = synthesize(src, njobs);
    ServiceConfig cfg;
    cfg.workers = workers;
    cfg.queue_capacity = 16;
    cfg.decoder = service_decoder();
    DecodeService service(src, cfg);
    for (const auto& s : jobs) {
      ServiceRequest req = request_for(src, s);
      if (s.job.id % 2 == 0) {
        ASSERT_FALSE(s.frame.quantised.empty());
        req.quantised = s.frame.quantised;
        req.llrs.clear();
      }
      EXPECT_TRUE(service.submit(std::move(req)));
    }
    expect_matches_reference(service.finish(), reference,
                             "quantised workers=" + std::to_string(workers));
  }
}

TEST(DecodeService, SubmitValidatesQuantisedPayloads) {
  auto src = make_mixed_source(0xD15C2);
  src.emit_quantised(service_decoder());
  const auto jobs = synthesize(src, 1);
  ServiceConfig cfg;
  cfg.decoder = service_decoder();
  DecodeService service(src, cfg);

  // Both payloads present: ambiguous ingest domain.
  ServiceRequest both = request_for(src, jobs[0]);
  both.quantised = jobs[0].frame.quantised;
  EXPECT_THROW(service.submit(std::move(both)), std::invalid_argument);

  // Truncated quantised payload.
  ServiceRequest bad = request_for(src, jobs[0]);
  bad.llrs.clear();
  bad.quantised = jobs[0].frame.quantised;
  bad.quantised.bytes.pop_back();
  EXPECT_THROW(service.submit(std::move(bad)), std::invalid_argument);

  // A valid quantised job still decodes.
  ServiceRequest good = request_for(src, jobs[0]);
  good.llrs.clear();
  good.quantised = jobs[0].frame.quantised;
  EXPECT_TRUE(service.submit(std::move(good)));
  const auto report = service.finish();
  ASSERT_EQ(report.jobs.size(), 1u);
  EXPECT_TRUE(report.jobs[0].payload_ok);
}

TEST(DecodeServiceDeterminism, StealHeavyAndStealFreeAgree) {
  const std::uint64_t seed = 0x57EA1;
  const int njobs = 48;
  const auto reference = modeled_reference(seed, njobs);
  for (const bool stealing : {true, false}) {
    ServiceConfig cfg;
    cfg.workers = 4;
    cfg.queue_capacity = 16;
    cfg.work_stealing = stealing;
    // A long bin delay parks large same-mode bins in local deques — the
    // steal-heavy shape; steal-free must still drain everything.
    cfg.max_bin_delay_ns = 50'000'000;
    cfg.max_local_batch = 2;  // small dispatches -> deep local deques
    cfg.decoder = service_decoder();
    const auto report = run_service(seed, njobs, cfg);
    expect_matches_reference(report, reference,
                             stealing ? "steal-heavy" : "steal-free");
  }
}

TEST(DecodeServiceDeterminism, QueueCapacitiesAgree) {
  const std::uint64_t seed = 0xCAB;
  const int njobs = 48;
  const auto reference = modeled_reference(seed, njobs);
  // Three central-queue bounds, including the rendezvous handoff
  // (capacity 0: a submit only completes by handing the job to a waiting
  // worker — the hardest backpressure).
  for (const std::size_t capacity : {std::size_t{0}, std::size_t{2},
                                     std::size_t{64}}) {
    ServiceConfig cfg;
    cfg.workers = 4;
    cfg.queue_capacity = capacity;
    cfg.admission = Admission::kBlock;
    cfg.decoder = service_decoder();
    const auto report = run_service(seed, njobs, cfg);
    expect_matches_reference(report, reference,
                             "capacity=" + std::to_string(capacity));
  }
}

TEST(DecodeServiceDeterminism, LedgerConservationAndReportShape) {
  const std::uint64_t seed = 0x1ED6;
  const int njobs = 40;
  auto src = make_mixed_source(seed);
  const auto jobs = synthesize(src, njobs);
  ServiceConfig cfg;
  cfg.workers = 3;
  cfg.decoder = service_decoder();
  DecodeService service(src, cfg);
  long long submitted_payload = 0;
  for (const auto& s : jobs) {
    ASSERT_TRUE(service.submit(request_for(src, s)));
    submitted_payload += src.code(s.job.mode).payload_bits();
  }
  const auto report = service.finish();
  ASSERT_EQ(report.jobs.size(), static_cast<std::size_t>(njobs));
  ASSERT_EQ(report.worker_ledgers.size(), 3u);
  ASSERT_EQ(report.worker_steals.size(), 3u);
  EXPECT_EQ(report.rejected_jobs, 0);
  // Payload-bit conservation across the per-worker ledgers.
  long long ledger_payload = 0, ledger_frames = 0;
  for (const auto& ledger : report.worker_ledgers) {
    ledger_payload += ledger.payload_bits;
    ledger_frames += ledger.frames;
  }
  EXPECT_EQ(ledger_payload, submitted_payload);
  EXPECT_EQ(ledger_frames, njobs);
  EXPECT_EQ(report.total_payload_bits, submitted_payload);
  EXPECT_EQ(report.totals.payload_bits, submitted_payload);
  // Wall-clock accounting: elapsed covers every job's latency sample.
  EXPECT_GT(report.wall_elapsed_ns, 0);
  EXPECT_GT(report.wall_frames_per_sec(), 0.0);
  EXPECT_LE(report.wall_latency_percentile_ns(50.0),
            report.wall_latency_percentile_ns(99.0));
  int payload_ok = 0;
  for (const auto& rec : report.jobs) {
    // payload_ok is evaluated (expected payload supplied); at 3
    // iterations a minority of frames genuinely fail to decode.
    if (rec.payload_ok) ++payload_ok;
    EXPECT_GE(rec.wall_start_ns, rec.wall_submit_ns);
    EXPECT_GE(rec.wall_finish_ns, rec.wall_start_ns);
    EXPECT_GE(rec.finish_seq, 0);
    EXPECT_GE(rec.worker, 0);
    EXPECT_LT(rec.worker, 3);
  }
  EXPECT_GT(payload_ok, njobs / 2);
}

// ---- MPMC queue stress (runs under TSan in CI) ------------------------------

TEST(BoundedMpmcQueue, ProducersOutnumberConsumersExactlyOnceDelivery) {
  BoundedMpmcQueue<int> queue(4);
  constexpr int kProducers = 8;
  constexpr int kPerProducer = 400;
  constexpr int kConsumers = 2;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p)
    producers.emplace_back([&queue, p] {
      for (int i = 0; i < kPerProducer; ++i)
        ASSERT_TRUE(queue.push(p * kPerProducer + i));
    });
  std::vector<std::vector<int>> taken(kConsumers);
  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c)
    consumers.emplace_back([&queue, &taken, c] {
      while (auto item = queue.pop()) taken[static_cast<std::size_t>(c)]
          .push_back(*item);
    });
  for (auto& t : producers) t.join();
  queue.close();
  for (auto& t : consumers) t.join();
  // Exactly-once: every produced value delivered to exactly one consumer.
  std::vector<int> all;
  for (const auto& v : taken) all.insert(all.end(), v.begin(), v.end());
  ASSERT_EQ(all.size(),
            static_cast<std::size_t>(kProducers * kPerProducer));
  std::sort(all.begin(), all.end());
  for (int i = 0; i < kProducers * kPerProducer; ++i)
    ASSERT_EQ(all[static_cast<std::size_t>(i)], i);
}

TEST(BoundedMpmcQueue, ZeroCapacityIsARendezvous) {
  BoundedMpmcQueue<int> queue(0);
  // No consumer waiting: non-blocking admission must fail — there is
  // nowhere for the item to go.
  EXPECT_FALSE(queue.try_push(1));
  EXPECT_TRUE(queue.empty());
  // A blocked consumer enables the handoff.
  std::atomic<int> received{-1};
  std::thread consumer([&] {
    auto item = queue.pop();
    ASSERT_TRUE(item.has_value());
    received.store(*item);
  });
  // Blocking push completes only by handing off to the waiting consumer.
  EXPECT_TRUE(queue.push(42));
  consumer.join();
  EXPECT_EQ(received.load(), 42);
  EXPECT_TRUE(queue.empty());
  // try_push succeeds only in the window where a consumer waits.
  std::thread consumer2([&] { (void)queue.pop(); });
  while (!queue.try_push(7)) std::this_thread::yield();
  consumer2.join();
  queue.close();
  EXPECT_FALSE(queue.push(9));
}

TEST(BoundedMpmcQueue, ShutdownWhileFullRejectsBlockedProducers) {
  BoundedMpmcQueue<int> queue(2);
  ASSERT_TRUE(queue.push(1));
  ASSERT_TRUE(queue.push(2));
  EXPECT_FALSE(queue.try_push(3));  // full
  std::atomic<bool> blocked_push_result{true};
  std::thread producer([&] {
    // Blocks on the full queue; close() must wake it with a rejection,
    // not leave it deadlocked and not admit the item.
    blocked_push_result.store(queue.push(3));
  });
  // Give the producer a moment to block, then shut down while full.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  queue.close();
  producer.join();
  EXPECT_FALSE(blocked_push_result.load());
  // The two admitted items still drain after close; then nullopt.
  EXPECT_EQ(queue.pop().value_or(-1), 1);
  EXPECT_EQ(queue.pop().value_or(-1), 2);
  EXPECT_FALSE(queue.pop().has_value());
}

TEST(BoundedMpmcQueue, CloseWakesBlockedConsumers) {
  BoundedMpmcQueue<int> queue(4);
  std::atomic<int> woke{0};
  std::vector<std::thread> consumers;
  for (int c = 0; c < 3; ++c)
    consumers.emplace_back([&] {
      EXPECT_FALSE(queue.pop().has_value());
      woke.fetch_add(1);
    });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  queue.close();
  for (auto& t : consumers) t.join();
  EXPECT_EQ(woke.load(), 3);
}

TEST(BoundedMpmcQueue, SelectorAndClaimPickUnderTheLock) {
  BoundedMpmcQueue<int> queue(8);
  for (const int v : {3, 8, 1, 6, 4}) ASSERT_TRUE(queue.push(v));
  // Selector picks the largest waiting item.
  auto largest = [](const std::deque<int>& q) {
    return static_cast<std::size_t>(
        std::max_element(q.begin(), q.end()) - q.begin());
  };
  auto item = queue.pop_select_for(largest, std::chrono::milliseconds(50));
  ASSERT_TRUE(item.has_value());
  EXPECT_EQ(*item, 8);
  // Claim: seed = oldest, companions = same parity, in queue order.
  std::vector<int> bin;
  auto oldest = [](const std::deque<int>&) { return std::size_t{0}; };
  auto same_parity = [](const int& seed, const int& cand) {
    return (seed % 2) == (cand % 2);
  };
  const auto taken = queue.claim(oldest, same_parity, 8, bin);
  EXPECT_EQ(taken, 2u);  // 3 (seed) then 1; 6 and 4 skipped
  ASSERT_EQ(bin.size(), 2u);
  EXPECT_EQ(bin[0], 3);
  EXPECT_EQ(bin[1], 1);
  EXPECT_EQ(queue.size(), 2u);
}

TEST(DecodeServiceStress, WorkStealingDrainsSkewedBins) {
  // A long bin delay and tiny dispatches park deep same-mode runs in few
  // workers' local deques; with stealing on, idle workers must drain them
  // and every job must complete with the right results. 8 workers over
  // 96 jobs maximises contention on the steal path (run under TSan).
  const std::uint64_t seed = 0x5733A1;
  const int njobs = 96;
  const auto reference = modeled_reference(seed, njobs);
  ServiceConfig cfg;
  cfg.workers = 8;
  cfg.queue_capacity = 8;
  cfg.work_stealing = true;
  cfg.max_bin_delay_ns = 100'000'000;
  cfg.max_local_batch = 1;  // every bin residue entry is stealable
  cfg.decoder = service_decoder();
  auto src = make_mixed_source(seed);
  const auto jobs = synthesize(src, njobs);
  DecodeService service(src, cfg);
  for (const auto& s : jobs)
    ASSERT_TRUE(service.submit(request_for(src, s)));
  const auto report = service.finish();
  expect_matches_reference(report, reference, "steal-stress");
  long long steals = 0;
  for (const long long s : report.worker_steals) steals += s;
  EXPECT_GE(steals, 0);
}

TEST(DecodeServiceStress, ConcurrentSubmittersShareTheAdmissionQueue) {
  // Multiple producer threads submitting concurrently (producers >
  // consumers) against a small queue: every job admitted exactly once,
  // results still bit-identical to the modeled reference.
  const std::uint64_t seed = 0xC0C0;
  const int njobs = 64;
  const auto reference = modeled_reference(seed, njobs);
  auto src = make_mixed_source(seed);
  const auto jobs = synthesize(src, njobs);
  ServiceConfig cfg;
  cfg.workers = 2;
  cfg.queue_capacity = 4;
  cfg.decoder = service_decoder();
  DecodeService service(src, cfg);
  constexpr int kSubmitters = 4;
  std::vector<std::thread> submitters;
  for (int t = 0; t < kSubmitters; ++t)
    submitters.emplace_back([&, t] {
      for (int i = t; i < njobs; i += kSubmitters)
        ASSERT_TRUE(service.submit(
            request_for(src, jobs[static_cast<std::size_t>(i)])));
    });
  for (auto& t : submitters) t.join();
  const auto report = service.finish();
  expect_matches_reference(report, reference, "concurrent-submit");
}

TEST(DecodeServiceStress, DestructorWithoutFinishJoinsCleanly) {
  // Dropping the service mid-flight must close the queue, drain or
  // discard, and join every worker — no leaks, no deadlock (the TSan job
  // verifies the interleavings).
  auto src = make_mixed_source(0xDEAD);
  const auto jobs = synthesize(src, 24);
  ServiceConfig cfg;
  cfg.workers = 4;
  cfg.queue_capacity = 4;
  cfg.decoder = service_decoder();
  {
    DecodeService service(src, cfg);
    for (const auto& s : jobs) (void)service.submit(request_for(src, s));
    // No finish(): the destructor handles shutdown with jobs in flight.
  }
  SUCCEED();
}

// ---- SLO / backpressure behaviour -------------------------------------------

TEST(DecodeServiceSlo, RejectedJobsAccountedAndPayloadConserved) {
  // Saturate a 1-worker service through a 1-slot queue with fail-fast
  // admission: a prefix is served, the overflow is rejected, and BOTH
  // sides are accounted — completed payload in the ledgers, rejected
  // payload in the rejection tally, summing to everything submitted.
  const std::uint64_t seed = 0xFEE;
  const int njobs = 60;
  auto src = make_mixed_source(seed);
  const auto jobs = synthesize(src, njobs);
  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.queue_capacity = 1;
  cfg.admission = Admission::kReject;
  cfg.decoder = service_decoder();
  cfg.decoder.max_iterations = 8;  // slow the worker: rejections certain
  DecodeService service(src, cfg);
  long long admitted = 0, rejected = 0;
  long long admitted_payload = 0, rejected_payload = 0;
  for (const auto& s : jobs) {
    const long long payload = src.code(s.job.mode).payload_bits();
    if (service.submit(request_for(src, s))) {
      ++admitted;
      admitted_payload += payload;
    } else {
      ++rejected;
      rejected_payload += payload;
    }
  }
  const auto report = service.finish();
  EXPECT_GT(rejected, 0) << "queue never filled: not saturated";
  EXPECT_EQ(report.jobs.size(), static_cast<std::size_t>(admitted));
  EXPECT_EQ(report.rejected_jobs, rejected);
  EXPECT_EQ(report.rejected_payload_bits, rejected_payload);
  EXPECT_EQ(report.total_payload_bits, admitted_payload);
  EXPECT_EQ(report.totals.payload_bits, admitted_payload);
  // Conservation: nothing vanished between admission and the ledgers.
  EXPECT_EQ(report.total_payload_bits + report.rejected_payload_bits,
            admitted_payload + rejected_payload);
  EXPECT_EQ(admitted + rejected, static_cast<long long>(njobs));
}

TEST(DecodeServiceSlo, DeadlineClassBeatsBestEffortP99) {
  // One worker, a deep backlog, EDF on: deadline-class jobs jump the
  // queue, so their p99 latency must be strictly below best-effort's.
  const std::uint64_t seed = 0x510;
  const int njobs = 200;
  auto src = make_mixed_source(seed);
  const auto jobs = synthesize(src, njobs);
  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.queue_capacity = static_cast<std::size_t>(njobs);
  cfg.max_bin_delay_ns = 0;  // isolate the class effect from binning
  cfg.slo.enabled = true;
  cfg.slo.default_deadline_ns = 2'000'000;
  cfg.decoder = service_decoder();
  DecodeService service(src, cfg);
  int deadline_jobs = 0;
  for (int i = 0; i < njobs; ++i) {
    // Every 5th job is deadline-class, interleaved through the stream.
    const auto cls =
        i % 5 == 0 ? TrafficClass::kDeadline : TrafficClass::kBestEffort;
    if (cls == TrafficClass::kDeadline) ++deadline_jobs;
    ASSERT_TRUE(service.submit(
        request_for(src, jobs[static_cast<std::size_t>(i)], cls)));
  }
  const auto report = service.finish();
  ASSERT_EQ(report.jobs.size(), static_cast<std::size_t>(njobs));
  int got_deadline = 0;
  for (const auto& rec : report.jobs)
    if (rec.cls == TrafficClass::kDeadline) ++got_deadline;
  ASSERT_EQ(got_deadline, deadline_jobs);
  const long long p99_deadline =
      report.wall_latency_percentile_ns(99.0, TrafficClass::kDeadline);
  const long long p99_best_effort =
      report.wall_latency_percentile_ns(99.0, TrafficClass::kBestEffort);
  EXPECT_LT(p99_deadline, p99_best_effort);
}

TEST(DecodeServiceSlo, ZeroDelayOneWorkerDegeneratesToFifoExactly) {
  // max_bin_delay_ns = 0 disables binning (always the oldest job, one at
  // a time) and a single worker serialises dispatch: completion order
  // must equal submission order exactly, job by job.
  const std::uint64_t seed = 0xF1F0;
  const int njobs = 40;
  auto src = make_mixed_source(seed);
  const auto jobs = synthesize(src, njobs);
  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.queue_capacity = static_cast<std::size_t>(njobs);
  cfg.max_bin_delay_ns = 0;
  cfg.decoder = service_decoder();
  DecodeService service(src, cfg);
  for (const auto& s : jobs)
    ASSERT_TRUE(service.submit(request_for(src, s)));
  const auto report = service.finish();
  ASSERT_EQ(report.jobs.size(), static_cast<std::size_t>(njobs));
  for (const auto& rec : report.jobs) {
    // Jobs were submitted in id order 0..n-1, so FIFO means the
    // completion stamp equals the id — for every job, not just most.
    EXPECT_EQ(rec.finish_seq, rec.id) << "job " << rec.id;
  }
  // One serial worker, oldest-first: dispatch never reorders, so each
  // job starts no earlier than its predecessor finishes its dispatch.
  for (std::size_t i = 1; i < report.jobs.size(); ++i)
    EXPECT_GE(report.jobs[i].wall_start_ns,
              report.jobs[i - 1].wall_start_ns);
}

// ---- lifecycle and config validation ----------------------------------------

TEST(DecodeService, EmptyServiceFinishesWithValidEmptyReport) {
  auto src = make_mixed_source(1);
  ServiceConfig cfg;
  cfg.workers = 2;
  cfg.decoder = service_decoder();
  DecodeService service(src, cfg);
  const auto report = service.finish();
  EXPECT_TRUE(report.jobs.empty());
  ASSERT_EQ(report.worker_ledgers.size(), 2u);
  EXPECT_EQ(report.total_payload_bits, 0);
  EXPECT_EQ(report.wall_elapsed_ns, 0);
  EXPECT_EQ(report.wall_frames_per_sec(), 0.0);
  EXPECT_EQ(report.wall_latency_percentile_ns(99.0), 0);
  EXPECT_EQ(report.latency_percentile(50.0), 0);
}

TEST(DecodeService, FinishIsSingleShot) {
  auto src = make_mixed_source(2);
  ServiceConfig cfg;
  cfg.decoder = service_decoder();
  DecodeService service(src, cfg);
  (void)service.finish();
  EXPECT_THROW(service.finish(), std::logic_error);
}

TEST(DecodeService, InvalidConfigOrRequestThrows) {
  auto src = make_mixed_source(3);
  {
    ServiceConfig cfg;
    cfg.workers = 0;
    cfg.decoder = service_decoder();
    EXPECT_THROW(DecodeService(src, cfg), std::invalid_argument);
  }
  {
    ServiceConfig cfg;
    cfg.max_bin_delay_ns = -1;
    cfg.decoder = service_decoder();
    EXPECT_THROW(DecodeService(src, cfg), std::invalid_argument);
  }
  {
    // The default DecoderConfig kernel is full BP, which the SIMD stream
    // engine cannot run — the service must reject it up front, before
    // any thread spawns, not fail inside a worker.
    ServiceConfig cfg;  // cfg.decoder left at defaults (kFullBp)
    EXPECT_THROW(DecodeService(src, cfg), std::invalid_argument);
  }
  {
    ServiceConfig cfg;
    cfg.decoder = service_decoder();
    cfg.decoder.datapath = core::Datapath::kFloat;
    EXPECT_THROW(DecodeService(src, cfg), std::invalid_argument);
  }
  ServiceConfig cfg;
  cfg.decoder = service_decoder();
  DecodeService service(src, cfg);
  ServiceRequest bad_mode;
  bad_mode.mode = 99;
  bad_mode.llrs.resize(16);
  EXPECT_THROW(service.submit(std::move(bad_mode)), std::invalid_argument);
  ServiceRequest bad_llrs;
  bad_llrs.mode = 0;
  bad_llrs.llrs.resize(3);  // not transmitted_bits() long
  EXPECT_THROW(service.submit(std::move(bad_llrs)), std::invalid_argument);
}

}  // namespace
