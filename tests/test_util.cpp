#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <set>
#include <sstream>

#include "ldpc/util/args.hpp"
#include "ldpc/util/rng.hpp"
#include "ldpc/util/stats.hpp"
#include "ldpc/util/table.hpp"

namespace {

using ldpc::util::Args;
using ldpc::util::ErrorCounter;
using ldpc::util::RunningStats;
using ldpc::util::Table;
using ldpc::util::Xoshiro256;

TEST(Rng, DeterministicForSameSeed) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a() == b() ? 1 : 0;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, GaussianMomentsMatchStandardNormal) {
  Xoshiro256 rng(13);
  RunningStats s;
  for (int i = 0; i < 200000; ++i) s.add(rng.gaussian());
  EXPECT_NEAR(s.mean(), 0.0, 0.01);
  EXPECT_NEAR(s.stddev(), 1.0, 0.01);
}

TEST(Rng, BoundedStaysInRangeAndHitsAllValues) {
  Xoshiro256 rng(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.bounded(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, JumpProducesDisjointStream) {
  Xoshiro256 a(99);
  Xoshiro256 b(99);
  b.jump();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a() == b() ? 1 : 0;
  EXPECT_LT(same, 2);
}

TEST(Rng, BitIsRoughlyFair) {
  Xoshiro256 rng(21);
  int ones = 0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) ones += rng.bit() ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(ones) / trials, 0.5, 0.01);
}

TEST(RunningStats, BasicMoments) {
  RunningStats s;
  for (double x : {1.0, 2.0, 3.0, 4.0, 5.0}) s.add(x);
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  Xoshiro256 rng(5);
  RunningStats all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.gaussian();
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.add(2.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(ErrorCounter, RatesComputedCorrectly) {
  ErrorCounter c;
  c.add_frame(0, 100);
  c.add_frame(3, 100);
  EXPECT_EQ(c.frames(), 2u);
  EXPECT_EQ(c.frame_errors(), 1u);
  EXPECT_DOUBLE_EQ(c.ber(), 3.0 / 200.0);
  EXPECT_DOUBLE_EQ(c.fer(), 0.5);
}

TEST(ErrorCounter, MergeAccumulates) {
  ErrorCounter a, b;
  a.add_frame(1, 10);
  b.add_frame(0, 10);
  b.add_frame(2, 10);
  a.merge(b);
  EXPECT_EQ(a.frames(), 3u);
  EXPECT_EQ(a.bit_errors(), 3u);
  EXPECT_EQ(a.frame_errors(), 2u);
}

TEST(Table, AlignedOutputContainsCells) {
  Table t("demo");
  t.header({"a", "bee"});
  t.row({"1", "2"});
  t.row({"333", "4"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("demo"), std::string::npos);
  EXPECT_NE(s.find("bee"), std::string::npos);
  EXPECT_NE(s.find("333"), std::string::npos);
}

TEST(Table, CsvOutput) {
  Table t;
  t.header({"x", "y"}).row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "x,y\n1,2\n");
}

TEST(Table, Formatters) {
  EXPECT_EQ(ldpc::util::fmt_fixed(3.456, 2), "3.46");
  EXPECT_EQ(ldpc::util::fmt_group(12774), "12,774");
  EXPECT_EQ(ldpc::util::fmt_group(-1234567), "-1,234,567");
  EXPECT_EQ(ldpc::util::fmt_sci(0.000123), "1.23e-04");
}

TEST(Args, FlagFormsAndTypes) {
  const char* argv[] = {"prog", "pos1", "--iters", "10",
                        "--snr=2.5", "--name", "x", "--et"};
  Args args(8, argv, {"iters", "snr", "et", "name"});
  EXPECT_EQ(args.get_or("iters", 0LL), 10);
  EXPECT_DOUBLE_EQ(args.get_or("snr", 0.0), 2.5);
  EXPECT_TRUE(args.get_or("et", false));
  EXPECT_EQ(args.get_or("name", std::string{}), "x");
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "pos1");
}

TEST(Args, UnknownFlagThrows) {
  const char* argv[] = {"prog", "--bogus"};
  EXPECT_THROW(Args(2, argv, {"known"}), std::invalid_argument);
}

TEST(Args, DefaultsWhenAbsent) {
  const char* argv[] = {"prog"};
  Args args(1, argv, {"x"});
  EXPECT_FALSE(args.has("x"));
  EXPECT_EQ(args.get_or("x", 7LL), 7);
}

// ---- substream seeding ------------------------------------------------------

TEST(SubstreamSeed, DistinctAcrossStreamsAndSeeds) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t seed : {0ULL, 1ULL, 2ULL, 0xDEADBEEFULL})
    for (std::uint64_t stream = 0; stream < 64; ++stream)
      seen.insert(ldpc::util::substream_seed(seed, stream));
  EXPECT_EQ(seen.size(), 4u * 64u);  // no collisions in this grid
}

TEST(SubstreamSeed, NearbyStreamsDecorrelated) {
  // The old `seed ^ (const * key)` point mix kept low-bit structure across
  // nearby keys; the SplitMix64 substream must not. Check that adjacent
  // streams differ in roughly half their bits.
  int total_bits = 0;
  for (std::uint64_t stream = 0; stream < 100; ++stream) {
    const auto a = ldpc::util::substream_seed(42, stream);
    const auto b = ldpc::util::substream_seed(42, stream + 1);
    total_bits += std::popcount(a ^ b);
  }
  EXPECT_GT(total_bits, 100 * 20);
  EXPECT_LT(total_bits, 100 * 44);
}

TEST(SubstreamSeed, SeedsIndependentGenerators) {
  Xoshiro256 a(ldpc::util::substream_seed(7, 0));
  Xoshiro256 b(ldpc::util::substream_seed(7, 1));
  int agree = 0;
  for (int i = 0; i < 64; ++i) agree += a() == b() ? 1 : 0;
  EXPECT_EQ(agree, 0);
}

}  // namespace
