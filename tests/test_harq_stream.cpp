// Closed-loop HARQ over the serving layer: retransmission traffic, the
// quantised combined-frame path through the modeled farm and the live
// service, and the modeled-vs-live bit-identity acceptance lock.
//
// Contracts:
//   1. TrafficSource retransmission mechanics: push_retransmission jobs
//      preempt fresh traffic, carry session / round + 1 / next-rv, and
//      synthesise the *combined* soft state of rounds 0..r; round-0
//      frames stay byte-identical to the historical per-id synthesis.
//   2. run_harq_modeled closes the loop on the discrete-event farm:
//      NACKs respawn as next-round jobs, deeper rounds ACK what round 0
//      could not, and per-(session, round) decode results are invariant
//      to the worker count (only timelines move).
//   3. run_harq_live drives the same loop through DecodeService via the
//      on_complete feedback hook, and its per-(session, round) results
//      are bit-identical to the modeled farm's — the decode chain
//      (combined QuantisedFrame under the chip layer order) is shared,
//      so scheduling, threads and wall-clock cannot leak into decisions.
#include <gtest/gtest.h>

#include <map>
#include <tuple>

#include "ldpc/channel/channel.hpp"
#include "ldpc/codes/registry.hpp"
#include "ldpc/enc/encoder.hpp"
#include "ldpc/sim/simulator.hpp"
#include "ldpc/stream/harq_stream.hpp"
#include "ldpc/util/rng.hpp"

namespace {

using namespace ldpc;

core::DecoderConfig stream_config() {
  core::DecoderConfig cfg;
  cfg.max_iterations = 10;
  cfg.kernel = core::CnuKernel::kMinSum;
  cfg.stop_on_codeword = true;
  cfg.early_termination.enabled = true;
  return cfg;
}

/// One fading NR mode at an Es/N0 low enough that a healthy fraction of
/// round-0 attempts NACK — the population the closed loop exists for.
stream::TrafficSource fading_nr_source(std::uint64_t seed) {
  stream::TrafficSource source({.seed = seed});
  source.add_mode(codes::make_nr_code(codes::Rate::kR15, 36, 1500, 40),
                  2.0, 1.0, channel::ChannelKind::kRayleighBlock, 0);
  source.emit_quantised(stream_config());
  return source;
}

stream::SchedulerConfig modeled_config(int workers) {
  stream::SchedulerConfig cfg;
  cfg.workers = workers;
  cfg.policy = stream::Policy::kBinned;
  cfg.max_burst = 4;
  cfg.decoder = stream_config();
  return cfg;
}

stream::ServiceConfig live_config(int workers) {
  stream::ServiceConfig cfg;
  cfg.workers = workers;
  cfg.decoder = stream_config();
  return cfg;
}

using RoundKey = std::pair<long long, int>;          // (session, round)
using RoundResult = std::tuple<std::uint64_t, bool, int, int>;  // hash,
                                                     // converged, iters, rv

std::map<RoundKey, RoundResult> by_round(const stream::StreamReport& r) {
  std::map<RoundKey, RoundResult> out;
  for (const auto& job : r.jobs) {
    const auto [it, inserted] = out.emplace(
        RoundKey{job.session, job.round},
        RoundResult{job.decision_hash, job.converged, job.iterations,
                    job.rv});
    EXPECT_TRUE(inserted) << "duplicate (session " << job.session
                          << ", round " << job.round << ")";
  }
  return out;
}

// ---------------------------------------------------------------------------
// Contract 1: source-side retransmission mechanics.

TEST(HarqTraffic, RetransmissionsPreemptFreshTrafficWithNextRv) {
  auto source = fading_nr_source(3);
  const stream::Job first = source.next();
  EXPECT_EQ(first.session, first.id);
  EXPECT_EQ(first.round, 0);
  EXPECT_EQ(first.rv, 0);

  source.push_retransmission(first, 1000);
  const stream::Job retx = source.next();
  EXPECT_EQ(retx.session, first.session);
  EXPECT_EQ(retx.round, 1);
  EXPECT_EQ(retx.rv, source.config().rv_sequence[1]);
  EXPECT_EQ(retx.arrival_cycle, 1000);
  EXPECT_EQ(retx.id, first.id + 1);  // retransmissions consume stream ids

  // Earliest arrival pops first regardless of push order.
  source.push_retransmission(retx, 900);
  stream::Job a = retx;
  a.session = 77;
  source.push_retransmission(a, 500);
  EXPECT_EQ(source.next().session, 77);
  EXPECT_EQ(source.next().session, first.session);

  source.reset();
  EXPECT_EQ(source.next().id, 0);  // reset drops pending retransmissions
  EXPECT_EQ(source.next().round, 0);
}

TEST(HarqTraffic, DegenerateSchemeModesChaseCombine) {
  stream::TrafficSource source({.seed = 5});
  source.add_mode(codes::make_code({codes::Standard::kWimax80216e,
                                    codes::Rate::kR12, 24}),
                  1.0);
  source.emit_quantised(stream_config());
  EXPECT_EQ(source.rv_for_round(0, 0), 0);
  EXPECT_EQ(source.rv_for_round(0, 1), 0);  // rv forced to 0: Chase
  EXPECT_EQ(source.rv_for_round(0, 2), 0);
  const stream::Job job = source.next();
  source.push_retransmission(job, 0);
  EXPECT_EQ(source.next().rv, 0);
}

TEST(HarqTraffic, Round0FramesKeepHistoricalSynthesis) {
  // The HARQ refactor must not move a single byte of round-0 traffic:
  // the frame equals the legacy per-id derivation (content generator
  // substream_seed(seed, 2 id + 1): payload bits, then the AWGN stream).
  stream::TrafficSource source({.seed = 11});
  const auto code = codes::make_nr_code(codes::Rate::kR13, 52, 2600, 0);
  source.add_mode(codes::make_nr_code(codes::Rate::kR13, 52, 2600, 0),
                  2.5);
  const stream::Job job = source.next();
  const stream::JobFrame frame = source.make_frame(job);

  util::Xoshiro256 rng(util::substream_seed(
      11, 2ULL * static_cast<std::uint64_t>(job.id) + 1));
  std::vector<std::uint8_t> info(
      static_cast<std::size_t>(code.payload_bits()));
  enc::random_bits(rng, info);
  const auto cw = enc::make_encoder(code)->encode(info);
  const double sigma = channel::ebn0_to_sigma(
      2.5, code.effective_rate(), channel::Modulation::kBpsk);
  const auto llrs = sim::transmit_llrs(code, cw,
                                       channel::Modulation::kBpsk, sigma,
                                       rng);
  EXPECT_EQ(frame.payload, info);
  EXPECT_EQ(frame.codeword, cw);
  EXPECT_EQ(frame.llrs, llrs);
}

TEST(HarqTraffic, CombinedRoundsNeedQuantisedEmission) {
  stream::TrafficSource source({.seed = 2});
  source.add_mode(codes::make_nr_code(codes::Rate::kR15, 36, 1500, 40),
                  2.0);
  stream::Job job = source.next();
  job.round = 1;
  EXPECT_THROW(source.make_frame(job), std::logic_error);
}

TEST(HarqTraffic, CombinedFrameAccumulatesEveryRound) {
  auto source = fading_nr_source(13);
  const auto& code = source.code(0);
  stream::Job job = source.next();
  const stream::JobFrame r0 = source.make_frame(job);
  stream::Job retx = job;
  retx.round = 2;
  const stream::JobFrame r2 = source.make_frame(retx);
  // Same session, same transport block...
  EXPECT_EQ(r0.payload, r2.payload);
  EXPECT_EQ(r0.codeword, r2.codeword);
  // ...but the combined frame differs from the one-shot quantisation
  // (three rounds of soft state, two of them beyond the rv0 window).
  ASSERT_EQ(r2.quantised.n, code.n());
  EXPECT_NE(r0.quantised.bytes, r2.quantised.bytes);
  // Round 2's own LLRs ride along for diagnostics, at the rv2 window.
  EXPECT_EQ(r2.llrs.size(),
            static_cast<std::size_t>(code.transmitted_bits()));
  EXPECT_NE(r0.llrs, r2.llrs);
}

// ---------------------------------------------------------------------------
// Contract 2: the modeled closed loop.

TEST(HarqModeled, ClosedLoopDeliversWhatRound0CouldNot) {
  auto source = fading_nr_source(17);
  const auto report = stream::run_harq_modeled(
      source, modeled_config(2), 32, {.max_rounds = 3});
  const auto& h = report.harq;
  ASSERT_TRUE(h.enabled);
  EXPECT_EQ(h.sessions, 32);
  ASSERT_EQ(h.rounds.size(), 3u);
  EXPECT_EQ(h.rounds[0].attempts, 32);
  // The fading channel must actually produce NACKs at this Es/N0 (the
  // fixture's reason to exist) ...
  ASSERT_GT(h.rounds[1].attempts, 0);
  EXPECT_EQ(h.rounds[1].attempts, 32 - h.rounds[0].acks);
  // ... and combining must convert some of them.
  EXPECT_GT(h.delivered, h.rounds[0].acks);
  EXPECT_GT(h.goodput(), 0.0);
  EXPECT_LT(h.goodput(), source.code(0).effective_rate());
  // Conservation: every attempt is a job record; payload ledgers agree.
  long long attempts = 0;
  for (const auto& r : h.rounds) attempts += r.attempts;
  EXPECT_EQ(static_cast<long long>(report.jobs.size()), attempts);
  EXPECT_EQ(report.totals.frames, attempts);
}

TEST(HarqModeled, PerRoundResultsInvariantToWorkerCount) {
  auto s1 = fading_nr_source(23);
  auto s3 = fading_nr_source(23);
  const auto r1 = stream::run_harq_modeled(s1, modeled_config(1), 24,
                                           {.max_rounds = 3});
  const auto r3 = stream::run_harq_modeled(s3, modeled_config(3), 24,
                                           {.max_rounds = 3});
  EXPECT_EQ(by_round(r1), by_round(r3));
  EXPECT_EQ(r1.harq.delivered, r3.harq.delivered);
  EXPECT_EQ(r1.harq.tx_bits_sent, r3.harq.tx_bits_sent);
  EXPECT_EQ(r1.harq.payload_bits_delivered,
            r3.harq.payload_bits_delivered);
}

TEST(HarqModeled, FeedbackDelayPushesRetransmissionArrivals) {
  auto fast = fading_nr_source(29);
  auto slow = fading_nr_source(29);
  const auto rf = stream::run_harq_modeled(
      fast, modeled_config(2), 16,
      {.max_rounds = 2, .feedback_delay_cycles = 0});
  const auto rs = stream::run_harq_modeled(
      slow, modeled_config(2), 16,
      {.max_rounds = 2, .feedback_delay_cycles = 500'000});
  // Decode results cannot move...
  EXPECT_EQ(by_round(rf), by_round(rs));
  // ...but the delayed loop's retransmissions land later on the clock.
  long long fast_last = 0, slow_last = 0;
  for (const auto& j : rf.jobs)
    if (j.round > 0) fast_last = std::max(fast_last, j.arrival_cycle);
  for (const auto& j : rs.jobs)
    if (j.round > 0) slow_last = std::max(slow_last, j.arrival_cycle);
  ASSERT_GT(fast_last, 0);
  EXPECT_GE(slow_last, fast_last + 500'000);
  EXPECT_GE(rs.makespan_cycles, rf.makespan_cycles);
}

// ---------------------------------------------------------------------------
// Contract 3: the live closed loop and the cross-path acceptance lock.

TEST(HarqLive, ClosedLoopMatchesModeledBitForBit) {
  auto modeled_source = fading_nr_source(31);
  auto live_source = fading_nr_source(31);
  const auto modeled = stream::run_harq_modeled(
      modeled_source, modeled_config(2), 24, {.max_rounds = 3});
  const auto live = stream::run_harq_live(live_source, live_config(2), 24,
                                          {.max_rounds = 3});
  // Per-(session, round): same hash, same convergence, same iteration
  // count, same rv — the decode chain is shared; only timelines differ.
  EXPECT_EQ(by_round(modeled), by_round(live));
  EXPECT_EQ(modeled.harq.delivered, live.harq.delivered);
  EXPECT_EQ(modeled.harq.tx_bits_sent, live.harq.tx_bits_sent);
  EXPECT_EQ(modeled.harq.payload_bits_delivered,
            live.harq.payload_bits_delivered);
  for (std::size_t r = 0; r < modeled.harq.rounds.size(); ++r) {
    EXPECT_EQ(modeled.harq.rounds[r].attempts,
              live.harq.rounds[r].attempts);
    EXPECT_EQ(modeled.harq.rounds[r].acks, live.harq.rounds[r].acks);
  }
  // The live payload check ran against the re-synthesised codewords.
  for (const auto& job : live.jobs) {
    if (job.converged) {
      EXPECT_TRUE(job.payload_ok) << job.id;
    }
  }
}

TEST(HarqLive, PerRoundResultsInvariantToWorkerCount) {
  auto s1 = fading_nr_source(37);
  auto s4 = fading_nr_source(37);
  const auto r1 = stream::run_harq_live(s1, live_config(1), 24,
                                        {.max_rounds = 3});
  const auto r4 = stream::run_harq_live(s4, live_config(4), 24,
                                        {.max_rounds = 3});
  EXPECT_EQ(by_round(r1), by_round(r4));
  EXPECT_EQ(r1.harq.delivered, r4.harq.delivered);
}

TEST(HarqLive, RejectsAForeignCompletionHook) {
  auto source = fading_nr_source(41);
  stream::ServiceConfig cfg = live_config(1);
  cfg.on_complete = [](const stream::StreamJob&) {};
  EXPECT_THROW(stream::run_harq_live(source, cfg, 4, {.max_rounds = 2}),
               std::invalid_argument);
}

TEST(HarqStream, RequiresQuantisedEmission) {
  stream::TrafficSource source({.seed = 43});
  source.add_mode(codes::make_nr_code(codes::Rate::kR15, 36, 1500, 40),
                  2.0, 1.0, channel::ChannelKind::kRayleighBlock, 0);
  EXPECT_THROW(stream::run_harq_modeled(source, modeled_config(1), 4,
                                        {.max_rounds = 2}),
               std::logic_error);
}

}  // namespace
