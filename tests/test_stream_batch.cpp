// Refill-equivalence suite: locks the continuous lane-refill engine
// (core::StreamBatchEngine) against the scalar engine, bit for bit.
//
// The contract under test: streaming a shuffled, mixed-iteration queue of
// frames through the refill loop — lanes retiring at different iterations,
// freshly deposited frames sharing vectors with half-decoded neighbours,
// dead lanes evolving past the queue's end — produces per-frame hard
// decisions, iteration counts, convergence/ET flags and datapath cycles
// IDENTICAL to decoding each frame alone on the scalar LayerEngine. And it
// must hold across the whole kernel matrix: every SIMD dispatch tier this
// host can run (scalar, SSE4.2, AVX2, AVX-512 — forced in turn via the
// kernels test hooks), every lane ELEMENT TYPE the config's rails admit
// (int32 and int16 for the standard configs; int8 for the strict
// 8-bit-APP config, checked against its own re-derived scalar golden), and
// both lane widths of each type — because a tier, type or width that
// drifts by one saturation point or min-scan tie would silently corrupt
// every batched consumer (sim workers, chip bursts, the stream scheduler
// farm).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <initializer_list>
#include <set>
#include <string>

#include "ldpc/codes/registry.hpp"
#include "ldpc/core/decoder.hpp"
#include "ldpc/core/golden.hpp"
#include "ldpc/core/kernels/minsum_kernels.hpp"
#include "ldpc/core/soa_scan.hpp"
#include "ldpc/core/stream_batch_engine.hpp"
#include "ldpc/enc/encoder.hpp"
#include "ldpc/sim/simulator.hpp"
#include "ldpc/util/rng.hpp"

namespace {

using namespace ldpc;
namespace kernels = core::kernels;

// Mixed-iteration decode config: early termination AND codeword stopping
// on, so frame iteration counts spread across 1..max and lanes retire at
// genuinely different times (the whole point of the refill engine).
core::DecoderConfig stream_config() {
  core::DecoderConfig cfg;
  cfg.max_iterations = 10;
  cfg.kernel = core::CnuKernel::kMinSum;
  cfg.stop_on_codeword = true;
  cfg.early_termination.enabled = true;
  return cfg;
}

// The strict 8-bit-APP configuration (the paper's literal datapath): APP
// words saturate at the message rails, so every value fits an int8 lane.
core::DecoderConfig strict_app_config() {
  core::DecoderConfig cfg = stream_config();
  cfg.app_extra_bits = 0;
  return cfg;
}

/// The dispatch tiers this host can actually execute, deduplicated
/// (force_tier clamps to the CPUID ceiling, so on an SSE-only host all
/// four requests collapse to {scalar, sse42}).
std::vector<kernels::Tier> available_tiers() {
  std::set<kernels::Tier> seen;
  for (const kernels::Tier t :
       {kernels::Tier::kScalar, kernels::Tier::kSse42, kernels::Tier::kAvx2,
        kernels::Tier::kAvx512})
    seen.insert(kernels::force_tier(t));
  kernels::clear_forced_tier();
  return {seen.begin(), seen.end()};
}

/// A shuffled mixed-severity frame queue: hard (low SNR, decodes run to
/// the iteration cap) and easy (high SNR, ET/codeword-stop after a few
/// iterations) frames interleaved in a seed-dependent order, transmitted
/// through the code's scheme (so NR puncturing / fillers / rate matching
/// are exercised too).
std::vector<double> make_queue(const codes::QCCode& code, int frames,
                               std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  const auto encoder = enc::make_encoder(code);
  std::vector<std::uint8_t> info(
      static_cast<std::size_t>(code.payload_bits()));
  std::vector<double> llrs;
  llrs.reserve(static_cast<std::size_t>(code.transmitted_bits()) *
               static_cast<std::size_t>(frames));
  for (int f = 0; f < frames; ++f) {
    const double ebn0_db = (rng() & 1) ? 4.5 : 1.0;
    const double sigma = channel::ebn0_to_sigma(
        ebn0_db, code.effective_rate(), channel::Modulation::kBpsk);
    enc::random_bits(rng, info);
    const auto cw = encoder->encode(info);
    const auto llr = sim::transmit_llrs(code, cw,
                                        channel::Modulation::kBpsk, sigma,
                                        rng);
    llrs.insert(llrs.end(), llr.begin(), llr.end());
  }
  return llrs;
}

void expect_result_eq(const core::FixedDecodeResult& ref,
                      const core::FixedDecodeResult& got,
                      const std::string& context) {
  EXPECT_EQ(ref.bits, got.bits) << context << " (hard decisions)";
  EXPECT_EQ(ref.iterations, got.iterations) << context << " (iterations)";
  EXPECT_EQ(ref.converged, got.converged) << context;
  EXPECT_EQ(ref.early_terminated, got.early_terminated) << context;
  EXPECT_EQ(ref.datapath_cycles, got.datapath_cycles) << context;
}

/// The core check: scalar per-frame reference under `cfg` vs the refill
/// engine over the same queue, at every available tier, every lane type in
/// `types` (each must be eligible for `cfg`) and both lane widths of each
/// type.
void check_refill_equivalence(
    const codes::QCCode& code, const core::DecoderConfig& cfg,
    std::initializer_list<kernels::LaneType> types) {
  // Large codes decode slower; a 10-frame queue still refills the widest
  // engine while keeping the full-registry sweep affordable.
  const int frames = code.n() > 8000 ? 10 : 20;
  const auto tx = static_cast<std::size_t>(code.transmitted_bits());
  const auto llrs = make_queue(code, frames, 0xC0FFEE ^ code.n());

  core::ReconfigurableDecoder scalar(code, cfg);
  std::vector<core::FixedDecodeResult> ref;
  ref.reserve(static_cast<std::size_t>(frames));
  std::set<int> iters_seen;
  for (int f = 0; f < frames; ++f) {
    ref.push_back(scalar.decode(
        std::span<const double>(llrs).subspan(
            static_cast<std::size_t>(f) * tx, tx)));
    iters_seen.insert(ref.back().iterations);
  }
  // The queue must be genuinely mixed-iteration, otherwise this test
  // would not exercise mid-flight refill at all.
  EXPECT_GE(iters_seen.size(), 2u) << code.name();

  for (const kernels::Tier tier : available_tiers()) {
    for (const kernels::LaneType type : types) {
      const int scale = kernels::lane_scale(type);
      for (const int lanes : {8 * scale, 16 * scale}) {
        ASSERT_EQ(kernels::force_tier(tier), tier);
        core::StreamBatchEngine engine(cfg, lanes, type);
        ASSERT_EQ(engine.tier(), tier);
        ASSERT_EQ(engine.lane_type(), type);
        ASSERT_EQ(engine.lanes(), lanes);
        engine.reconfigure(code);
        std::vector<core::FixedDecodeResult> got(
            static_cast<std::size_t>(frames));
        engine.decode(llrs, {}, got);
        for (int f = 0; f < frames; ++f)
          expect_result_eq(ref[static_cast<std::size_t>(f)],
                           got[static_cast<std::size_t>(f)],
                           code.name() + " tier=" + to_string(tier) +
                               " type=" + to_string(type) + " lanes=" +
                               std::to_string(lanes) + " frame " +
                               std::to_string(f));
      }
    }
  }
  kernels::clear_forced_tier();
}

class RefillEquivalence : public ::testing::TestWithParam<codes::CodeId> {};

TEST_P(RefillEquivalence, MatchesScalarAtEveryTierTypeAndLaneWidth) {
  check_refill_equivalence(
      codes::make_code(GetParam()), stream_config(),
      {kernels::LaneType::kInt32, kernels::LaneType::kInt16});
}

TEST_P(RefillEquivalence, StrictAppInt8MatchesRederivedScalar) {
  // int8 lanes need the strict 8-bit-APP config (rails +/-127); the scalar
  // golden is re-derived under the same config, so this locks the int8
  // datapath — saturating byte arithmetic, byte min-scan, byte argmin —
  // against the int32 scalar arithmetic bit for bit.
  check_refill_equivalence(codes::make_code(GetParam()),
                           strict_app_config(),
                           {kernels::LaneType::kInt8});
}

INSTANTIATE_TEST_SUITE_P(AllModes, RefillEquivalence,
                         ::testing::ValuesIn(codes::all_modes()),
                         [](const auto& info) {
                           std::string n = to_string(info.param);
                           for (char& c : n)
                             if (!isalnum(static_cast<unsigned char>(c)))
                               c = '_';
                           return n;
                         });

// The NR rate-matched golden cases (E != sendable, fillers): the per-lane
// deposit on refill must reproduce the scalar deposit for non-degenerate
// schemes too — including the narrowing deposit of the int16/int8 lanes
// (filler rails land at the APP maximum, the exact lane saturation point).
class RefillEquivalenceNrRateMatched
    : public ::testing::TestWithParam<core::golden::NrRateMatchedCase> {};

TEST_P(RefillEquivalenceNrRateMatched,
       MatchesScalarAtEveryTierTypeAndLaneWidth) {
  const auto& c = GetParam();
  check_refill_equivalence(
      codes::make_nr_code(c.rate, c.z, c.transmitted_bits, c.filler_bits),
      stream_config(),
      {kernels::LaneType::kInt32, kernels::LaneType::kInt16});
}

TEST_P(RefillEquivalenceNrRateMatched, StrictAppInt8MatchesRederivedScalar) {
  const auto& c = GetParam();
  check_refill_equivalence(
      codes::make_nr_code(c.rate, c.z, c.transmitted_bits, c.filler_bits),
      strict_app_config(), {kernels::LaneType::kInt8});
}

INSTANTIATE_TEST_SUITE_P(
    RateMatched, RefillEquivalenceNrRateMatched,
    ::testing::ValuesIn(core::golden::nr_rate_matched_cases()),
    [](const auto& info) {
      return std::string(info.param.rate == codes::Rate::kR13 ? "BG1"
                                                              : "BG2") +
             "_z" + std::to_string(info.param.z) + "_E" +
             std::to_string(info.param.transmitted_bits) + "_F" +
             std::to_string(info.param.filler_bits);
    });

TEST(StreamBatchEngine, SelectsNarrowestEligibleLaneType) {
  // This test asserts the DEFAULT auto-selection, so it must neutralise
  // any ambient LDPC_LANE_TYPE (the forced-lane CI jobs export one for
  // the whole binary, which would legitimately widen the strict-config
  // pick from int8 to int16).
  const char* ambient = std::getenv("LDPC_LANE_TYPE");
  const std::string saved = ambient ? ambient : "";
  ASSERT_EQ(unsetenv("LDPC_LANE_TYPE"), 0);
  kernels::reload_env();

  // The default config's APP words span 10 bits -> int16; the strict
  // 8-bit-APP config fits int8. QFormat caps words at 16 bits, so every
  // supported config fits int16 — int32 is only reachable by request
  // (it remains the reference instantiation the matrix tests pin).
  EXPECT_EQ(core::select_lane_type(stream_config()),
            kernels::LaneType::kInt16);
  EXPECT_EQ(core::select_lane_type(strict_app_config()),
            kernels::LaneType::kInt8);
  core::DecoderConfig wide = stream_config();
  wide.format = fixed::QFormat(14, 2);  // 16-bit APP words: still int16
  EXPECT_EQ(core::select_lane_type(wide), kernels::LaneType::kInt16);

  core::StreamBatchEngine standard(stream_config());
  EXPECT_EQ(standard.lane_type(), kernels::LaneType::kInt16);
  EXPECT_EQ(standard.lanes(),
            core::StreamBatchEngine::preferred_lanes(
                kernels::LaneType::kInt16));
  core::StreamBatchEngine strict(strict_app_config());
  EXPECT_EQ(strict.lane_type(), kernels::LaneType::kInt8);

  // An EXPLICITLY requested type is strict: int8 cannot hold the standard
  // config's 10-bit APP words.
  EXPECT_THROW(core::StreamBatchEngine(stream_config(), 0,
                                       kernels::LaneType::kInt8),
               std::invalid_argument);
  // ...but any wider type than the narrowest eligible one is fine.
  core::StreamBatchEngine wide32(stream_config(), 0,
                                 kernels::LaneType::kInt32);
  EXPECT_EQ(wide32.lane_type(), kernels::LaneType::kInt32);

  if (ambient) {
    ASSERT_EQ(setenv("LDPC_LANE_TYPE", saved.c_str(), 1), 0);
  } else {
    ASSERT_EQ(unsetenv("LDPC_LANE_TYPE"), 0);
  }
  kernels::reload_env();
}

TEST(StreamBatchEngine, LaneTypeEnvKnobIsAClampedPreference) {
  // LDPC_LANE_TYPE mirrors LDPC_SIMD: it pins the lane type of engines
  // built afterwards — but as a PREFERENCE clamped to eligibility, so a
  // forced-int8 CI lane can still run standard configs (they widen back
  // to int16 instead of throwing).
  const char* ambient = std::getenv("LDPC_LANE_TYPE");
  const std::string saved = ambient ? ambient : "";

  ASSERT_EQ(setenv("LDPC_LANE_TYPE", "int32", 1), 0);
  kernels::reload_env();
  ASSERT_TRUE(kernels::requested_lane_type().has_value());
  EXPECT_EQ(*kernels::requested_lane_type(), kernels::LaneType::kInt32);
  core::StreamBatchEngine widened(stream_config());
  EXPECT_EQ(widened.lane_type(), kernels::LaneType::kInt32);

  ASSERT_EQ(setenv("LDPC_LANE_TYPE", "int8", 1), 0);
  kernels::reload_env();
  core::StreamBatchEngine clamped(stream_config());
  EXPECT_EQ(clamped.lane_type(), kernels::LaneType::kInt16);  // widened back
  core::StreamBatchEngine narrow(strict_app_config());
  EXPECT_EQ(narrow.lane_type(), kernels::LaneType::kInt8);

  if (ambient) {
    ASSERT_EQ(setenv("LDPC_LANE_TYPE", saved.c_str(), 1), 0);
  } else {
    ASSERT_EQ(unsetenv("LDPC_LANE_TYPE"), 0);
  }
  kernels::reload_env();
}

TEST(StreamBatchEngine, ForceScalarEnvKnobLowersDispatch) {
  // LDPC_SIMD=scalar is the CI / bug-triage knob: it must pin the active
  // tier (and any engine built afterwards) to the portable kernel.
  // Preserve any ambient value — the CI forced-scalar lane exports the
  // knob for the whole binary and later tests must still see it.
  const char* ambient = std::getenv("LDPC_SIMD");
  const std::string saved = ambient ? ambient : "";
  ASSERT_EQ(setenv("LDPC_SIMD", "scalar", 1), 0);
  kernels::reload_env();
  EXPECT_EQ(kernels::active_tier(), kernels::Tier::kScalar);

  const auto code = codes::make_code(
      {codes::Standard::kWimax80216e, codes::Rate::kR12, 24});
  const core::DecoderConfig cfg = stream_config();
  core::StreamBatchEngine engine(cfg);
  EXPECT_EQ(engine.tier(), kernels::Tier::kScalar);
  // Non-AVX-512 dispatch prefers one 256-bit register's worth of lanes.
  EXPECT_EQ(engine.lanes(), 8 * kernels::lane_scale(engine.lane_type()));
  engine.reconfigure(code);

  const int frames = 12;
  const auto llrs = make_queue(code, frames, 7);
  core::ReconfigurableDecoder scalar(code, cfg);
  std::vector<core::FixedDecodeResult> got(frames);
  engine.decode(llrs, {}, got);
  const auto tx = static_cast<std::size_t>(code.transmitted_bits());
  for (int f = 0; f < frames; ++f)
    expect_result_eq(scalar.decode(std::span<const double>(llrs).subspan(
                         static_cast<std::size_t>(f) * tx, tx)),
                     got[static_cast<std::size_t>(f)],
                     "env=scalar frame " + std::to_string(f));

  if (ambient) {
    ASSERT_EQ(setenv("LDPC_SIMD", saved.c_str(), 1), 0);
    kernels::reload_env();
    const kernels::Tier want =
        std::min(kernels::parse_tier(saved), kernels::detected_tier());
    EXPECT_EQ(kernels::active_tier(), want);
  } else {
    ASSERT_EQ(unsetenv("LDPC_SIMD"), 0);
    kernels::reload_env();
    EXPECT_EQ(kernels::active_tier(), kernels::detected_tier());
  }
}

TEST(StreamBatchEngine, ValidatesConfigAndLaneWidth) {
  core::DecoderConfig cfg = stream_config();
  // The default config selects int16 lanes: valid widths are 16 and 32.
  EXPECT_THROW(core::StreamBatchEngine(cfg, 7), std::invalid_argument);
  EXPECT_THROW(core::StreamBatchEngine(cfg, 8), std::invalid_argument);
  EXPECT_THROW(core::StreamBatchEngine(cfg, 64), std::invalid_argument);
  // Width validation is per chosen type: 32 lanes of int32 is no engine.
  EXPECT_THROW(core::StreamBatchEngine(cfg, 32, kernels::LaneType::kInt32),
               std::invalid_argument);
  core::DecoderConfig bp = cfg;
  bp.kernel = core::CnuKernel::kFullBp;
  EXPECT_THROW(core::StreamBatchEngine{bp}, std::invalid_argument);
  core::DecoderConfig flt = cfg;
  flt.datapath = core::Datapath::kFloat;
  EXPECT_THROW(core::StreamBatchEngine{flt}, std::invalid_argument);
  core::DecoderConfig iters = cfg;
  iters.max_iterations = 0;
  EXPECT_THROW(core::StreamBatchEngine{iters}, std::invalid_argument);
  core::DecoderConfig offs = cfg;
  offs.kernel = core::CnuKernel::kOffsetMinSum;
  offs.minsum_offset_raw = -1;
  EXPECT_THROW(core::StreamBatchEngine{offs}, std::invalid_argument);

  core::StreamBatchEngine unconfigured(cfg);
  std::vector<core::FixedDecodeResult> one(1);
  EXPECT_THROW(unconfigured.decode({}, {}, one), std::logic_error);

  // preferred_lanes follows the dispatched tier — one full 512-bit
  // register only on AVX-512 (AVX-512BW for the narrow types), one 256-bit
  // register otherwise — scaled by the element width.
  const bool avx512 = kernels::active_tier() == kernels::Tier::kAvx512;
  EXPECT_EQ(core::StreamBatchEngine::preferred_lanes(), avx512 ? 16 : 8);
  const bool wide_narrow = avx512 && kernels::detected_avx512bw();
  EXPECT_EQ(
      core::StreamBatchEngine::preferred_lanes(kernels::LaneType::kInt16),
      wide_narrow ? 32 : 16);
  EXPECT_EQ(
      core::StreamBatchEngine::preferred_lanes(kernels::LaneType::kInt8),
      wide_narrow ? 64 : 32);
  core::StreamBatchEngine auto_engine(cfg);
  EXPECT_EQ(auto_engine.lanes(),
            core::StreamBatchEngine::preferred_lanes(
                auto_engine.lane_type()));
}

TEST(StreamBatchEngine, RepeatedQueuesLeaveNoStateBehind) {
  // Dead-lane content from a drained queue (or a previous decode call)
  // must never leak into the next queue's results: a second decode on the
  // same engine equals a fresh engine's output bit for bit.
  const auto code = codes::make_code(
      {codes::Standard::kWlan80211n, codes::Rate::kR12, 27});
  const core::DecoderConfig cfg = stream_config();
  const auto queue_a = make_queue(code, 9, 21);   // ragged: 9 < lanes+refill
  const auto queue_b = make_queue(code, 19, 22);  // refills past one round
  const int lanes = 16;  // the default config runs int16 lanes

  core::StreamBatchEngine reused(cfg, lanes);
  reused.reconfigure(code);
  std::vector<core::FixedDecodeResult> first(9), second(19);
  reused.decode(queue_a, {}, first);
  reused.decode(queue_b, {}, second);

  core::StreamBatchEngine fresh(cfg, lanes);
  fresh.reconfigure(code);
  std::vector<core::FixedDecodeResult> expect(19);
  fresh.decode(queue_b, {}, expect);
  for (int f = 0; f < 19; ++f)
    expect_result_eq(expect[static_cast<std::size_t>(f)],
                     second[static_cast<std::size_t>(f)],
                     "reused engine frame " + std::to_string(f));
}

TEST(StreamBatchEngine, QueueOrderDoesNotPerturbPerFrameResults) {
  // Scheduling independence: a frame's decode depends only on its own
  // LLRs, never on which lane it lands in or which frames share the
  // vectors — permuting the queue permutes the results exactly.
  const auto code = codes::make_code(
      {codes::Standard::kWimax80216e, codes::Rate::kR34A, 48});
  const core::DecoderConfig cfg = stream_config();
  const int frames = 17;
  const auto tx = static_cast<std::size_t>(code.transmitted_bits());
  const auto llrs = make_queue(code, frames, 33);

  // Reversed queue: frame f of `reversed` is frame frames-1-f of `llrs`.
  std::vector<double> reversed(llrs.size());
  for (int f = 0; f < frames; ++f)
    std::copy(llrs.begin() + static_cast<std::ptrdiff_t>(
                                 static_cast<std::size_t>(f) * tx),
              llrs.begin() + static_cast<std::ptrdiff_t>(
                                 static_cast<std::size_t>(f + 1) * tx),
              reversed.begin() +
                  static_cast<std::ptrdiff_t>(
                      static_cast<std::size_t>(frames - 1 - f) * tx));

  core::StreamBatchEngine engine(cfg);
  engine.reconfigure(code);
  std::vector<core::FixedDecodeResult> fwd(frames), rev(frames);
  engine.decode(llrs, {}, fwd);
  engine.decode(reversed, {}, rev);
  for (int f = 0; f < frames; ++f)
    expect_result_eq(fwd[static_cast<std::size_t>(f)],
                     rev[static_cast<std::size_t>(frames - 1 - f)],
                     "permuted queue frame " + std::to_string(f));
}

TEST(StreamBatchEngine, DecodeBatchEntryPointsUseRefillEngine) {
  // ReconfigurableDecoder::decode_batch over a wide mixed-iteration batch
  // (well past any lane width) must equal per-frame decode — the
  // integration contract every consumer (sim workers, chip bursts,
  // stream scheduler) leans on.
  const auto code = codes::make_code(
      {codes::Standard::kWimax80216e, codes::Rate::kR12, 96});
  const core::DecoderConfig cfg = stream_config();
  const int frames = 40;
  const auto tx = static_cast<std::size_t>(code.transmitted_bits());
  const auto llrs = make_queue(code, frames, 55);

  core::ReconfigurableDecoder batched(code, cfg), scalar(code, cfg);
  const auto results = batched.decode_batch(llrs);
  ASSERT_EQ(results.size(), static_cast<std::size_t>(frames));
  for (int f = 0; f < frames; ++f)
    expect_result_eq(scalar.decode(std::span<const double>(llrs).subspan(
                         static_cast<std::size_t>(f) * tx, tx)),
                     results[static_cast<std::size_t>(f)],
                     "decode_batch frame " + std::to_string(f));
}

TEST(StreamBatchEngine, MinSumVariantsStreamBitExactly) {
  // Offset and normalized min-sum run through the same kernel matrix (the
  // correction rides in RowBounds): lock each variant's refill decode
  // against its scalar engine at the narrow lane type it selects.
  const auto code = codes::make_code(
      {codes::Standard::kWimax80216e, codes::Rate::kR23B, 36});
  for (const core::CnuKernel kernel :
       {core::CnuKernel::kOffsetMinSum, core::CnuKernel::kNormalizedMinSum}) {
    core::DecoderConfig cfg = stream_config();
    cfg.kernel = kernel;
    check_refill_equivalence(code, cfg, {kernels::LaneType::kInt32,
                                         kernels::LaneType::kInt16});
    core::DecoderConfig strict = strict_app_config();
    strict.kernel = kernel;
    check_refill_equivalence(code, strict, {kernels::LaneType::kInt8});
  }
}

}  // namespace
