// Refill-equivalence suite: locks the continuous lane-refill engine
// (core::StreamBatchEngine) against the scalar engine, bit for bit.
//
// The contract under test: streaming a shuffled, mixed-iteration queue of
// frames through the refill loop — lanes retiring at different iterations,
// freshly deposited frames sharing vectors with half-decoded neighbours,
// dead lanes evolving past the queue's end — produces per-frame hard
// decisions, iteration counts, convergence/ET flags and datapath cycles
// IDENTICAL to decoding each frame alone on the scalar LayerEngine. And it
// must hold at every SIMD dispatch tier this host can run (scalar, SSE4.2,
// AVX2, AVX-512 — forced in turn via the kernels test hooks) and at both
// lane widths (8 and 16), because a tier or width that drifts by one
// saturation point or min-scan tie would silently corrupt every batched
// consumer (sim workers, chip bursts, the stream scheduler farm).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <set>
#include <string>

#include "ldpc/codes/registry.hpp"
#include "ldpc/core/decoder.hpp"
#include "ldpc/core/golden.hpp"
#include "ldpc/core/kernels/minsum_kernels.hpp"
#include "ldpc/core/stream_batch_engine.hpp"
#include "ldpc/enc/encoder.hpp"
#include "ldpc/sim/simulator.hpp"
#include "ldpc/util/rng.hpp"

namespace {

using namespace ldpc;
namespace kernels = core::kernels;

// Mixed-iteration decode config: early termination AND codeword stopping
// on, so frame iteration counts spread across 1..max and lanes retire at
// genuinely different times (the whole point of the refill engine).
core::DecoderConfig stream_config() {
  core::DecoderConfig cfg;
  cfg.max_iterations = 10;
  cfg.kernel = core::CnuKernel::kMinSum;
  cfg.stop_on_codeword = true;
  cfg.early_termination.enabled = true;
  return cfg;
}

/// The dispatch tiers this host can actually execute, deduplicated
/// (force_tier clamps to the CPUID ceiling, so on an SSE-only host all
/// four requests collapse to {scalar, sse42}).
std::vector<kernels::Tier> available_tiers() {
  std::set<kernels::Tier> seen;
  for (const kernels::Tier t :
       {kernels::Tier::kScalar, kernels::Tier::kSse42, kernels::Tier::kAvx2,
        kernels::Tier::kAvx512})
    seen.insert(kernels::force_tier(t));
  kernels::clear_forced_tier();
  return {seen.begin(), seen.end()};
}

/// A shuffled mixed-severity frame queue: hard (low SNR, decodes run to
/// the iteration cap) and easy (high SNR, ET/codeword-stop after a few
/// iterations) frames interleaved in a seed-dependent order, transmitted
/// through the code's scheme (so NR puncturing / fillers / rate matching
/// are exercised too).
std::vector<double> make_queue(const codes::QCCode& code, int frames,
                               std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  const auto encoder = enc::make_encoder(code);
  std::vector<std::uint8_t> info(
      static_cast<std::size_t>(code.payload_bits()));
  std::vector<double> llrs;
  llrs.reserve(static_cast<std::size_t>(code.transmitted_bits()) *
               static_cast<std::size_t>(frames));
  for (int f = 0; f < frames; ++f) {
    const double ebn0_db = (rng() & 1) ? 4.5 : 1.0;
    const double sigma = channel::ebn0_to_sigma(
        ebn0_db, code.effective_rate(), channel::Modulation::kBpsk);
    enc::random_bits(rng, info);
    const auto cw = encoder->encode(info);
    const auto llr = sim::transmit_llrs(code, cw,
                                        channel::Modulation::kBpsk, sigma,
                                        rng);
    llrs.insert(llrs.end(), llr.begin(), llr.end());
  }
  return llrs;
}

void expect_result_eq(const core::FixedDecodeResult& ref,
                      const core::FixedDecodeResult& got,
                      const std::string& context) {
  EXPECT_EQ(ref.bits, got.bits) << context << " (hard decisions)";
  EXPECT_EQ(ref.iterations, got.iterations) << context << " (iterations)";
  EXPECT_EQ(ref.converged, got.converged) << context;
  EXPECT_EQ(ref.early_terminated, got.early_terminated) << context;
  EXPECT_EQ(ref.datapath_cycles, got.datapath_cycles) << context;
}

/// The core check: scalar per-frame reference vs the refill engine over
/// the same queue, at every available tier and both lane widths.
void check_refill_equivalence(const codes::QCCode& code) {
  const core::DecoderConfig cfg = stream_config();
  // Large codes decode slower; a 10-frame queue still refills an 8-lane
  // engine while keeping the full-registry sweep affordable.
  const int frames = code.n() > 8000 ? 10 : 20;
  const auto tx = static_cast<std::size_t>(code.transmitted_bits());
  const auto llrs = make_queue(code, frames, 0xC0FFEE ^ code.n());

  core::ReconfigurableDecoder scalar(code, cfg);
  std::vector<core::FixedDecodeResult> ref;
  ref.reserve(static_cast<std::size_t>(frames));
  int distinct_iteration_counts = 0;
  std::set<int> iters_seen;
  for (int f = 0; f < frames; ++f) {
    ref.push_back(scalar.decode(
        std::span<const double>(llrs).subspan(
            static_cast<std::size_t>(f) * tx, tx)));
    iters_seen.insert(ref.back().iterations);
  }
  distinct_iteration_counts = static_cast<int>(iters_seen.size());
  // The queue must be genuinely mixed-iteration, otherwise this test
  // would not exercise mid-flight refill at all.
  EXPECT_GE(distinct_iteration_counts, 2) << code.name();

  for (const kernels::Tier tier : available_tiers()) {
    for (const int lanes : {8, 16}) {
      ASSERT_EQ(kernels::force_tier(tier), tier);
      core::StreamBatchEngine engine(cfg, lanes);
      ASSERT_EQ(engine.tier(), tier);
      ASSERT_EQ(engine.lanes(), lanes);
      engine.reconfigure(code);
      std::vector<core::FixedDecodeResult> got(
          static_cast<std::size_t>(frames));
      engine.decode(llrs, {}, got);
      for (int f = 0; f < frames; ++f)
        expect_result_eq(ref[static_cast<std::size_t>(f)],
                         got[static_cast<std::size_t>(f)],
                         code.name() + " tier=" + to_string(tier) +
                             " lanes=" + std::to_string(lanes) + " frame " +
                             std::to_string(f));
    }
  }
  kernels::clear_forced_tier();
}

class RefillEquivalence : public ::testing::TestWithParam<codes::CodeId> {};

TEST_P(RefillEquivalence, MatchesScalarAtEveryTierAndLaneWidth) {
  check_refill_equivalence(codes::make_code(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(AllModes, RefillEquivalence,
                         ::testing::ValuesIn(codes::all_modes()),
                         [](const auto& info) {
                           std::string n = to_string(info.param);
                           for (char& c : n)
                             if (!isalnum(static_cast<unsigned char>(c)))
                               c = '_';
                           return n;
                         });

// The NR rate-matched golden cases (E != sendable, fillers): the per-lane
// deposit on refill must reproduce the scalar deposit for non-degenerate
// schemes too.
class RefillEquivalenceNrRateMatched
    : public ::testing::TestWithParam<core::golden::NrRateMatchedCase> {};

TEST_P(RefillEquivalenceNrRateMatched,
       MatchesScalarAtEveryTierAndLaneWidth) {
  const auto& c = GetParam();
  check_refill_equivalence(
      codes::make_nr_code(c.rate, c.z, c.transmitted_bits, c.filler_bits));
}

INSTANTIATE_TEST_SUITE_P(
    RateMatched, RefillEquivalenceNrRateMatched,
    ::testing::ValuesIn(core::golden::nr_rate_matched_cases()),
    [](const auto& info) {
      return std::string(info.param.rate == codes::Rate::kR13 ? "BG1"
                                                              : "BG2") +
             "_z" + std::to_string(info.param.z) + "_E" +
             std::to_string(info.param.transmitted_bits) + "_F" +
             std::to_string(info.param.filler_bits);
    });

TEST(StreamBatchEngine, ForceScalarEnvKnobLowersDispatch) {
  // LDPC_SIMD=scalar is the CI / bug-triage knob: it must pin the active
  // tier (and any engine built afterwards) to the portable kernel.
  // Preserve any ambient value — the CI forced-scalar lane exports the
  // knob for the whole binary and later tests must still see it.
  const char* ambient = std::getenv("LDPC_SIMD");
  const std::string saved = ambient ? ambient : "";
  ASSERT_EQ(setenv("LDPC_SIMD", "scalar", 1), 0);
  kernels::reload_env();
  EXPECT_EQ(kernels::active_tier(), kernels::Tier::kScalar);

  const auto code = codes::make_code(
      {codes::Standard::kWimax80216e, codes::Rate::kR12, 24});
  const core::DecoderConfig cfg = stream_config();
  core::StreamBatchEngine engine(cfg);
  EXPECT_EQ(engine.tier(), kernels::Tier::kScalar);
  EXPECT_EQ(engine.lanes(), 8);  // non-AVX-512 dispatch prefers 8 lanes
  engine.reconfigure(code);

  const int frames = 12;
  const auto llrs = make_queue(code, frames, 7);
  core::ReconfigurableDecoder scalar(code, cfg);
  std::vector<core::FixedDecodeResult> got(frames);
  engine.decode(llrs, {}, got);
  const auto tx = static_cast<std::size_t>(code.transmitted_bits());
  for (int f = 0; f < frames; ++f)
    expect_result_eq(scalar.decode(std::span<const double>(llrs).subspan(
                         static_cast<std::size_t>(f) * tx, tx)),
                     got[static_cast<std::size_t>(f)],
                     "env=scalar frame " + std::to_string(f));

  if (ambient) {
    ASSERT_EQ(setenv("LDPC_SIMD", saved.c_str(), 1), 0);
    kernels::reload_env();
    const kernels::Tier want =
        std::min(kernels::parse_tier(saved), kernels::detected_tier());
    EXPECT_EQ(kernels::active_tier(), want);
  } else {
    ASSERT_EQ(unsetenv("LDPC_SIMD"), 0);
    kernels::reload_env();
    EXPECT_EQ(kernels::active_tier(), kernels::detected_tier());
  }
}

TEST(StreamBatchEngine, ValidatesConfigAndLaneWidth) {
  core::DecoderConfig cfg = stream_config();
  EXPECT_THROW(core::StreamBatchEngine(cfg, 7), std::invalid_argument);
  EXPECT_THROW(core::StreamBatchEngine(cfg, 32), std::invalid_argument);
  core::DecoderConfig bp = cfg;
  bp.kernel = core::CnuKernel::kFullBp;
  EXPECT_THROW(core::StreamBatchEngine{bp}, std::invalid_argument);
  core::DecoderConfig flt = cfg;
  flt.datapath = core::Datapath::kFloat;
  EXPECT_THROW(core::StreamBatchEngine{flt}, std::invalid_argument);
  core::DecoderConfig iters = cfg;
  iters.max_iterations = 0;
  EXPECT_THROW(core::StreamBatchEngine{iters}, std::invalid_argument);

  core::StreamBatchEngine unconfigured(cfg);
  std::vector<core::FixedDecodeResult> one(1);
  EXPECT_THROW(unconfigured.decode({}, {}, one), std::logic_error);

  // preferred_lanes follows the dispatched tier: 16 only when AVX-512
  // fills a full register, 8 otherwise.
  const int pref = core::StreamBatchEngine::preferred_lanes();
  EXPECT_EQ(pref,
            kernels::active_tier() == kernels::Tier::kAvx512 ? 16 : 8);
  core::StreamBatchEngine auto_engine(cfg);
  EXPECT_EQ(auto_engine.lanes(), pref);
}

TEST(StreamBatchEngine, RepeatedQueuesLeaveNoStateBehind) {
  // Dead-lane content from a drained queue (or a previous decode call)
  // must never leak into the next queue's results: a second decode on the
  // same engine equals a fresh engine's output bit for bit.
  const auto code = codes::make_code(
      {codes::Standard::kWlan80211n, codes::Rate::kR12, 27});
  const core::DecoderConfig cfg = stream_config();
  const auto queue_a = make_queue(code, 9, 21);   // ragged: 9 < lanes+refill
  const auto queue_b = make_queue(code, 19, 22);  // refills past one round

  core::StreamBatchEngine reused(cfg, 8);
  reused.reconfigure(code);
  std::vector<core::FixedDecodeResult> first(9), second(19);
  reused.decode(queue_a, {}, first);
  reused.decode(queue_b, {}, second);

  core::StreamBatchEngine fresh(cfg, 8);
  fresh.reconfigure(code);
  std::vector<core::FixedDecodeResult> expect(19);
  fresh.decode(queue_b, {}, expect);
  for (int f = 0; f < 19; ++f)
    expect_result_eq(expect[static_cast<std::size_t>(f)],
                     second[static_cast<std::size_t>(f)],
                     "reused engine frame " + std::to_string(f));
}

TEST(StreamBatchEngine, QueueOrderDoesNotPerturbPerFrameResults) {
  // Scheduling independence: a frame's decode depends only on its own
  // LLRs, never on which lane it lands in or which frames share the
  // vectors — permuting the queue permutes the results exactly.
  const auto code = codes::make_code(
      {codes::Standard::kWimax80216e, codes::Rate::kR34A, 48});
  const core::DecoderConfig cfg = stream_config();
  const int frames = 17;
  const auto tx = static_cast<std::size_t>(code.transmitted_bits());
  const auto llrs = make_queue(code, frames, 33);

  // Reversed queue: frame f of `reversed` is frame frames-1-f of `llrs`.
  std::vector<double> reversed(llrs.size());
  for (int f = 0; f < frames; ++f)
    std::copy(llrs.begin() + static_cast<std::ptrdiff_t>(
                                 static_cast<std::size_t>(f) * tx),
              llrs.begin() + static_cast<std::ptrdiff_t>(
                                 static_cast<std::size_t>(f + 1) * tx),
              reversed.begin() +
                  static_cast<std::ptrdiff_t>(
                      static_cast<std::size_t>(frames - 1 - f) * tx));

  core::StreamBatchEngine engine(cfg);
  engine.reconfigure(code);
  std::vector<core::FixedDecodeResult> fwd(frames), rev(frames);
  engine.decode(llrs, {}, fwd);
  engine.decode(reversed, {}, rev);
  for (int f = 0; f < frames; ++f)
    expect_result_eq(fwd[static_cast<std::size_t>(f)],
                     rev[static_cast<std::size_t>(frames - 1 - f)],
                     "permuted queue frame " + std::to_string(f));
}

TEST(StreamBatchEngine, DecodeBatchEntryPointsUseRefillEngine) {
  // ReconfigurableDecoder::decode_batch over a wide mixed-iteration batch
  // (well past any lane width) must equal per-frame decode — the
  // integration contract every consumer (sim workers, chip bursts,
  // stream scheduler) leans on.
  const auto code = codes::make_code(
      {codes::Standard::kWimax80216e, codes::Rate::kR12, 96});
  const core::DecoderConfig cfg = stream_config();
  const int frames = 40;
  const auto tx = static_cast<std::size_t>(code.transmitted_bits());
  const auto llrs = make_queue(code, frames, 55);

  core::ReconfigurableDecoder batched(code, cfg), scalar(code, cfg);
  const auto results = batched.decode_batch(llrs);
  ASSERT_EQ(results.size(), static_cast<std::size_t>(frames));
  for (int f = 0; f < frames; ++f)
    expect_result_eq(scalar.decode(std::span<const double>(llrs).subspan(
                         static_cast<std::size_t>(f) * tx, tx)),
                     results[static_cast<std::size_t>(f)],
                     "decode_batch frame " + std::to_string(f));
}

}  // namespace
