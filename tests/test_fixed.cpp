#include <gtest/gtest.h>

#include <cmath>

#include "ldpc/fixed/qformat.hpp"

namespace {

using ldpc::fixed::QFormat;

TEST(QFormat, DefaultIsPaper8Bit) {
  const QFormat q;
  EXPECT_EQ(q.total_bits(), 8);
  EXPECT_EQ(q.frac_bits(), 2);
  EXPECT_EQ(q.raw_max(), 127);
  EXPECT_EQ(q.raw_min(), -127);  // symmetric saturation
  EXPECT_DOUBLE_EQ(q.lsb(), 0.25);
  EXPECT_DOUBLE_EQ(q.value_max(), 31.75);
}

TEST(QFormat, InvalidParamsFallBackToDefault) {
  const QFormat q(40, 39);
  EXPECT_EQ(q.total_bits(), 8);
  EXPECT_EQ(q.frac_bits(), 2);
}

TEST(QFormat, QuantizeRoundsToNearest) {
  const QFormat q;  // lsb 0.25
  EXPECT_EQ(q.quantize(0.0), 0);
  EXPECT_EQ(q.quantize(0.24), 1);
  EXPECT_EQ(q.quantize(0.126), 1);   // rounds to 0.25
  EXPECT_EQ(q.quantize(0.124), 0);
  EXPECT_EQ(q.quantize(-0.126), -1);
  EXPECT_EQ(q.quantize(1.0), 4);
}

TEST(QFormat, QuantizeSaturates) {
  const QFormat q;
  EXPECT_EQ(q.quantize(1000.0), 127);
  EXPECT_EQ(q.quantize(-1000.0), -127);
  EXPECT_EQ(q.quantize(31.75), 127);
  EXPECT_EQ(q.quantize(31.99), 127);
}

TEST(QFormat, QuantizeNanIsZero) {
  const QFormat q;
  EXPECT_EQ(q.quantize(std::nan("")), 0);
}

TEST(QFormat, RoundTripWithinHalfLsb) {
  const QFormat q;
  for (double v = -31.0; v <= 31.0; v += 0.093) {
    const double back = q.to_double(q.quantize(v));
    EXPECT_NEAR(back, v, q.lsb() / 2 + 1e-12) << "v=" << v;
  }
}

TEST(QFormat, SaturatingAddSub) {
  const QFormat q;
  EXPECT_EQ(q.add(100, 100), 127);
  EXPECT_EQ(q.add(-100, -100), -127);
  EXPECT_EQ(q.add(50, -30), 20);
  EXPECT_EQ(q.sub(-100, 100), -127);
  EXPECT_EQ(q.sub(100, -100), 127);
  EXPECT_EQ(q.sub(7, 3), 4);
}

TEST(QFormat, AddIsMonotone) {
  const QFormat q;
  // a + b <= a + b' when b <= b' (saturation preserves monotonicity).
  for (int a = -127; a <= 127; a += 13)
    for (int b = -127; b < 127; b += 11)
      EXPECT_LE(q.add(a, b), q.add(a, b + 1));
}

TEST(QFormat, AbsNeverOverflows) {
  const QFormat q;
  EXPECT_EQ(q.abs(q.raw_min()), q.raw_max());
  EXPECT_EQ(q.abs(-5), 5);
  EXPECT_EQ(q.abs(5), 5);
}

TEST(QFormat, NarrowFormats) {
  const QFormat q4(4, 1);  // range [-3.5, 3.5]
  EXPECT_EQ(q4.raw_max(), 7);
  EXPECT_DOUBLE_EQ(q4.value_max(), 3.5);
  EXPECT_EQ(q4.quantize(10.0), 7);
  EXPECT_EQ(q4.add(7, 7), 7);
}

TEST(QFormat, IntegerOnlyFormat) {
  const QFormat q(6, 0);
  EXPECT_DOUBLE_EQ(q.lsb(), 1.0);
  EXPECT_EQ(q.quantize(2.4), 2);
  EXPECT_EQ(q.quantize(2.5), 3);
}

TEST(QFormat, ToStringDescribesFormat) {
  EXPECT_EQ(QFormat(8, 2).to_string(), "Q5.2 (8b)");
  EXPECT_EQ(QFormat(6, 0).to_string(), "Q5.0 (6b)");
}

TEST(QFormat, Equality) {
  EXPECT_EQ(QFormat(8, 2), QFormat(8, 2));
  EXPECT_FALSE(QFormat(8, 2) == QFormat(8, 3));
}

}  // namespace
