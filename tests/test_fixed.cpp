#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "ldpc/fixed/qformat.hpp"
#include "ldpc/fixed/sat.hpp"

namespace {

using ldpc::fixed::QFormat;
using ldpc::fixed::Sat;

TEST(QFormat, DefaultIsPaper8Bit) {
  const QFormat q;
  EXPECT_EQ(q.total_bits(), 8);
  EXPECT_EQ(q.frac_bits(), 2);
  EXPECT_EQ(q.raw_max(), 127);
  EXPECT_EQ(q.raw_min(), -127);  // symmetric saturation
  EXPECT_DOUBLE_EQ(q.lsb(), 0.25);
  EXPECT_DOUBLE_EQ(q.value_max(), 31.75);
}

TEST(QFormat, InvalidParamsFallBackToDefault) {
  const QFormat q(40, 39);
  EXPECT_EQ(q.total_bits(), 8);
  EXPECT_EQ(q.frac_bits(), 2);
}

TEST(QFormat, QuantizeRoundsToNearest) {
  const QFormat q;  // lsb 0.25
  EXPECT_EQ(q.quantize(0.0), 0);
  EXPECT_EQ(q.quantize(0.24), 1);
  EXPECT_EQ(q.quantize(0.126), 1);   // rounds to 0.25
  EXPECT_EQ(q.quantize(0.124), 0);
  EXPECT_EQ(q.quantize(-0.126), -1);
  EXPECT_EQ(q.quantize(1.0), 4);
}

TEST(QFormat, QuantizeSaturates) {
  const QFormat q;
  EXPECT_EQ(q.quantize(1000.0), 127);
  EXPECT_EQ(q.quantize(-1000.0), -127);
  EXPECT_EQ(q.quantize(31.75), 127);
  EXPECT_EQ(q.quantize(31.99), 127);
}

TEST(QFormat, QuantizeNanIsZero) {
  const QFormat q;
  EXPECT_EQ(q.quantize(std::nan("")), 0);
}

TEST(QFormat, RoundTripWithinHalfLsb) {
  const QFormat q;
  for (double v = -31.0; v <= 31.0; v += 0.093) {
    const double back = q.to_double(q.quantize(v));
    EXPECT_NEAR(back, v, q.lsb() / 2 + 1e-12) << "v=" << v;
  }
}

TEST(QFormat, SaturatingAddSub) {
  const QFormat q;
  EXPECT_EQ(q.add(100, 100), 127);
  EXPECT_EQ(q.add(-100, -100), -127);
  EXPECT_EQ(q.add(50, -30), 20);
  EXPECT_EQ(q.sub(-100, 100), -127);
  EXPECT_EQ(q.sub(100, -100), 127);
  EXPECT_EQ(q.sub(7, 3), 4);
}

TEST(QFormat, AddIsMonotone) {
  const QFormat q;
  // a + b <= a + b' when b <= b' (saturation preserves monotonicity).
  for (int a = -127; a <= 127; a += 13)
    for (int b = -127; b < 127; b += 11)
      EXPECT_LE(q.add(a, b), q.add(a, b + 1));
}

TEST(QFormat, AbsNeverOverflows) {
  const QFormat q;
  EXPECT_EQ(q.abs(q.raw_min()), q.raw_max());
  EXPECT_EQ(q.abs(-5), 5);
  EXPECT_EQ(q.abs(5), 5);
}

TEST(QFormat, NarrowFormats) {
  const QFormat q4(4, 1);  // range [-3.5, 3.5]
  EXPECT_EQ(q4.raw_max(), 7);
  EXPECT_DOUBLE_EQ(q4.value_max(), 3.5);
  EXPECT_EQ(q4.quantize(10.0), 7);
  EXPECT_EQ(q4.add(7, 7), 7);
}

TEST(QFormat, IntegerOnlyFormat) {
  const QFormat q(6, 0);
  EXPECT_DOUBLE_EQ(q.lsb(), 1.0);
  EXPECT_EQ(q.quantize(2.4), 2);
  EXPECT_EQ(q.quantize(2.5), 3);
}

TEST(QFormat, ToStringDescribesFormat) {
  EXPECT_EQ(QFormat(8, 2).to_string(), "Q5.2 (8b)");
  EXPECT_EQ(QFormat(6, 0).to_string(), "Q5.0 (6b)");
}

TEST(QFormat, Equality) {
  EXPECT_EQ(QFormat(8, 2), QFormat(8, 2));
  EXPECT_FALSE(QFormat(8, 2) == QFormat(8, 3));
}

// ---- format edge cases ------------------------------------------------------

TEST(QFormat, SaturationAtBothRails) {
  const QFormat q;
  // One-below, at, and past each rail, for quantize and for arithmetic.
  EXPECT_EQ(q.quantize(q.value_max() - q.lsb()), q.raw_max() - 1);
  EXPECT_EQ(q.quantize(q.value_max()), q.raw_max());
  EXPECT_EQ(q.quantize(std::nextafter(q.value_max(), 1e9)), q.raw_max());
  EXPECT_EQ(q.quantize(-q.value_max()), q.raw_min());
  EXPECT_EQ(q.quantize(std::nextafter(-q.value_max(), -1e9)), q.raw_min());
  EXPECT_EQ(q.quantize(std::numeric_limits<double>::infinity()),
            q.raw_max());
  EXPECT_EQ(q.quantize(-std::numeric_limits<double>::infinity()),
            q.raw_min());
  EXPECT_EQ(q.add(q.raw_max(), 1), q.raw_max());
  EXPECT_EQ(q.sub(q.raw_min(), 1), q.raw_min());
  EXPECT_EQ(q.add(q.raw_min(), -1), q.raw_min());
  // Saturation is symmetric: the two's-complement -2^(b-1) code is unused.
  EXPECT_EQ(q.raw_min(), -q.raw_max());
  EXPECT_EQ(q.saturate(std::int64_t{q.raw_min()} - 1), q.raw_min());
}

TEST(QFormat, QuantizeDequantizeRoundTripIsExactOnGrid) {
  // Every representable level must survive quantize(to_double(raw)) == raw
  // exactly (to_double is a power-of-two scale, so it is lossless).
  for (const QFormat q : {QFormat(8, 2), QFormat(6, 0), QFormat(4, 1),
                          QFormat(12, 3), QFormat(16, 4)}) {
    for (std::int32_t raw = q.raw_min(); raw <= q.raw_max(); ++raw)
      ASSERT_EQ(q.quantize(q.to_double(raw)), raw) << q.to_string();
  }
}

TEST(QFormat, MinMaxAcrossWidths) {
  EXPECT_EQ(QFormat(2, 0).raw_max(), 1);
  EXPECT_EQ(QFormat(2, 0).raw_min(), -1);
  EXPECT_EQ(QFormat(16, 4).raw_max(), 32767);
  EXPECT_EQ(QFormat(16, 4).raw_min(), -32767);
  EXPECT_DOUBLE_EQ(QFormat(16, 4).value_max(), 32767.0 / 16.0);
  EXPECT_DOUBLE_EQ(QFormat(16, 15).lsb(), 1.0 / 32768.0);
}

TEST(QFormat, NegativeZeroQuantizesToPlusZero) {
  const QFormat q;
  const std::int32_t r = q.quantize(-0.0);
  EXPECT_EQ(r, 0);
  EXPECT_FALSE(std::signbit(q.to_double(r)));  // +0.0 back out
  // Values rounding to zero from either side also land on the single zero
  // level (no negative-zero code exists in two's complement).
  EXPECT_EQ(q.quantize(-0.124), 0);
  EXPECT_EQ(q.quantize(0.124), 0);
}

// ---- Sat<m, f>: the compile-time fixed-point value type ---------------------

TEST(Sat, FormatAndBoundsMatchRuntimeQFormat) {
  using M = ldpc::fixed::Msg8;  // Sat<8, 2>
  EXPECT_EQ(M::kRawMax, QFormat(8, 2).raw_max());
  EXPECT_EQ(M::kRawMin, QFormat(8, 2).raw_min());
  EXPECT_EQ(M::format(), QFormat(8, 2));
  EXPECT_DOUBLE_EQ(M::max().to_double(), QFormat(8, 2).value_max());
}

TEST(Sat, SaturatingArithmeticAtBothRails) {
  using M = Sat<8, 2>;
  EXPECT_EQ((M::max() + M::from_raw(1)).raw(), M::kRawMax);
  EXPECT_EQ((M::min() - M::from_raw(1)).raw(), M::kRawMin);
  EXPECT_EQ((M::from_raw(100) + M::from_raw(100)).raw(), 127);
  EXPECT_EQ((M::from_raw(-100) - M::from_raw(100)).raw(), -127);
  EXPECT_EQ((M::from_raw(50) - M::from_raw(30)).raw(), 20);
  EXPECT_EQ((-M::min()).raw(), M::kRawMax);  // symmetric: no overflow
  EXPECT_EQ(abs(M::min()).raw(), M::kRawMax);
}

TEST(Sat, QuantizeMatchesRuntimeFormatEverywhere) {
  using M = Sat<6, 1>;
  const QFormat q(6, 1);
  for (double v = -20.0; v <= 20.0; v += 0.037)
    ASSERT_EQ(M::from_double(v).raw(), q.quantize(v)) << v;
  for (std::int32_t raw = M::kRawMin; raw <= M::kRawMax; ++raw)
    ASSERT_EQ(M::from_double(M::from_raw(raw).to_double()).raw(), raw);
}

TEST(Sat, OrderingAndZero) {
  using M = Sat<8, 2>;
  EXPECT_TRUE(M::from_raw(-3) < M{});
  EXPECT_TRUE(M{} < M::from_raw(1));
  EXPECT_EQ(M{}.raw(), 0);
  EXPECT_EQ(M::from_double(-0.0).raw(), 0);
  EXPECT_EQ((-M{}).raw(), 0);  // negative zero collapses to the zero code
}

}  // namespace
