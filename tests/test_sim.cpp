#include <gtest/gtest.h>

#include "ldpc/baseline/layered_bp.hpp"
#include "ldpc/baseline/min_sum.hpp"
#include "ldpc/codes/registry.hpp"
#include "ldpc/sim/simulator.hpp"

namespace {

using namespace ldpc;
using codes::Rate;
using codes::Standard;

sim::SimConfig quick_config() {
  sim::SimConfig cfg;
  cfg.min_frames = 10;
  cfg.max_frames = 40;
  cfg.target_frame_errors = 5;
  return cfg;
}

TEST(Simulator, CleanChannelHasNoErrors) {
  const auto code = codes::make_code({Standard::kWimax80216e, Rate::kR12,
                                      24});
  core::ReconfigurableDecoder dec(code, {.stop_on_codeword = true});
  sim::Simulator s(code, sim::adapt(dec), quick_config());
  const auto p = s.run_point(8.0);
  EXPECT_EQ(p.info_errors.bit_errors(), 0u);
  EXPECT_EQ(p.fer(), 0.0);
  EXPECT_GE(p.frames, 10);
  EXPECT_LT(p.avg_iterations(), 3.0);
}

TEST(Simulator, LowSnrProducesErrors) {
  const auto code = codes::make_code({Standard::kWimax80216e, Rate::kR12,
                                      24});
  core::ReconfigurableDecoder dec(code, {.stop_on_codeword = true});
  sim::Simulator s(code, sim::adapt(dec), quick_config());
  const auto p = s.run_point(-2.0);
  EXPECT_GT(p.fer(), 0.5);
  EXPECT_GT(p.ber(), 0.0);
}

TEST(Simulator, ReproducibleForSameSeed) {
  const auto code = codes::make_code({Standard::kWimax80216e, Rate::kR12,
                                      24});
  core::ReconfigurableDecoder d1(code, {.stop_on_codeword = true});
  core::ReconfigurableDecoder d2(code, {.stop_on_codeword = true});
  sim::Simulator s1(code, sim::adapt(d1), quick_config());
  sim::Simulator s2(code, sim::adapt(d2), quick_config());
  const auto p1 = s1.run_point(1.5);
  const auto p2 = s2.run_point(1.5);
  EXPECT_EQ(p1.info_errors.bit_errors(), p2.info_errors.bit_errors());
  EXPECT_EQ(p1.frames, p2.frames);
}

TEST(Simulator, SeedChangesStream) {
  const auto code = codes::make_code({Standard::kWimax80216e, Rate::kR12,
                                      24});
  core::ReconfigurableDecoder d1(code, {.stop_on_codeword = true});
  core::ReconfigurableDecoder d2(code, {.stop_on_codeword = true});
  auto cfg2 = quick_config();
  cfg2.seed = 999;
  sim::Simulator s1(code, sim::adapt(d1), quick_config());
  sim::Simulator s2(code, sim::adapt(d2), cfg2);
  // Same operating point, different noise realisations.
  EXPECT_NE(s1.run_point(0.5).info_errors.bit_errors(),
            s2.run_point(0.5).info_errors.bit_errors());
}

TEST(Simulator, AdaptsBaselineDecoders) {
  const auto code = codes::make_code({Standard::kWimax80216e, Rate::kR12,
                                      24});
  baseline::LayeredBP bp(code);
  sim::Simulator s(code, sim::adapt(bp, 20), quick_config());
  const auto p = s.run_point(6.0);
  EXPECT_EQ(p.info_errors.bit_errors(), 0u);
}

TEST(Simulator, SweepRunsAllPoints) {
  const auto code = codes::make_code({Standard::kWimax80216e, Rate::kR12,
                                      24});
  core::ReconfigurableDecoder dec(code, {.stop_on_codeword = true});
  sim::Simulator s(code, sim::adapt(dec), quick_config());
  const auto points = s.sweep({0.0, 2.0, 4.0});
  ASSERT_EQ(points.size(), 3u);
  EXPECT_DOUBLE_EQ(points[0].ebn0_db, 0.0);
  EXPECT_DOUBLE_EQ(points[2].ebn0_db, 4.0);
  // FER non-increasing with SNR on this range.
  EXPECT_GE(points[0].fer(), points[2].fer());
}

TEST(Simulator, StopsEarlyOnTargetErrors) {
  const auto code = codes::make_code({Standard::kWimax80216e, Rate::kR12,
                                      24});
  core::ReconfigurableDecoder dec(code, {.stop_on_codeword = true});
  auto cfg = quick_config();
  cfg.min_frames = 5;
  cfg.max_frames = 1000;
  cfg.target_frame_errors = 3;
  sim::Simulator s(code, sim::adapt(dec), cfg);
  const auto p = s.run_point(-3.0);  // every frame fails here
  EXPECT_LT(p.frames, 20);
  EXPECT_GE(p.info_errors.frame_errors(), 3u);
}

TEST(Simulator, AverageIterationsDropWithSnr) {
  // The driver behind Fig. 9(a): better channels need fewer iterations.
  const auto code = codes::make_code({Standard::kWimax80216e, Rate::kR12,
                                      48});
  core::ReconfigurableDecoder dec(
      code, {.max_iterations = 10,
             .early_termination = {.enabled = true, .threshold_raw = 8}});
  sim::Simulator s(code, sim::adapt(dec), quick_config());
  const auto low = s.run_point(1.0);
  const auto high = s.run_point(5.0);
  EXPECT_LT(high.avg_iterations(), low.avg_iterations());
  EXPECT_LT(high.avg_iterations(), 5.0);
}

TEST(Simulator, UndetectedErrorsTracked) {
  // With the paper's hard-decision early termination at a low threshold
  // and a bad channel, some frames stop "confident but wrong" — the
  // undetected-error counter must see them.
  const auto code = codes::make_code({Standard::kWimax80216e, Rate::kR12,
                                      24});
  core::ReconfigurableDecoder dec(
      code, {.max_iterations = 10,
             .early_termination = {.enabled = true, .threshold_raw = 1}});
  // Adapter that reports "converged" whenever ET fired (mirrors a chip
  // that has no syndrome checker).
  sim::DecodeFn fn = [&dec](std::span<const double> llr) {
    auto r = dec.decode(llr);
    return sim::DecodeOutcome{std::move(r.bits), r.iterations,
                              r.early_terminated};
  };
  auto cfg = quick_config();
  cfg.min_frames = 150;
  cfg.max_frames = 150;
  sim::Simulator s(code, fn, cfg);
  const auto p = s.run_point(1.0);
  EXPECT_GT(p.undetected_errors, 0);
  EXPECT_GT(p.undetected_rate(), 0.0);
  EXPECT_LE(p.undetected_errors, p.frames);
}

TEST(Simulator, NoUndetectedErrorsWithGenieCheck) {
  // Syndrome-based stopping cannot report a non-codeword as converged;
  // miscorrections (converging to a *wrong* codeword) are possible in
  // principle but absent at this operating point.
  const auto code = codes::make_code({Standard::kWimax80216e, Rate::kR12,
                                      24});
  core::ReconfigurableDecoder dec(code, {.stop_on_codeword = true});
  sim::Simulator s(code, sim::adapt(dec), quick_config());
  const auto p = s.run_point(4.0);
  EXPECT_EQ(p.undetected_errors, 0);
}

// ---- parallel engine --------------------------------------------------------

// The acceptance criterion of the frame-parallel rebuild: SweepPoint
// statistics are bit-identical at 1, 2 and 8 worker threads for a fixed
// seed, including with adaptive stopping active.
TEST(ParallelSimulator, StatsBitIdenticalAcrossThreadCounts) {
  const auto code = codes::make_code({Standard::kWimax80216e, Rate::kR12,
                                      24});
  const auto factory = sim::fixed_decoder_factory(
      code, {.stop_on_codeword = true});
  auto cfg = quick_config();
  cfg.min_frames = 20;
  cfg.max_frames = 200;
  cfg.target_frame_errors = 8;  // adaptive stop fires mid-run at 1 dB

  sim::SimConfig c1 = cfg;
  c1.threads = 1;
  const auto ref = sim::Simulator(code, factory, c1).run_point(1.0);
  EXPECT_GT(ref.info_errors.frame_errors(), 0u);

  for (int threads : {2, 8}) {
    sim::SimConfig cn = cfg;
    cn.threads = threads;
    const auto p = sim::Simulator(code, factory, cn).run_point(1.0);
    EXPECT_EQ(p.frames, ref.frames) << threads;
    EXPECT_EQ(p.info_errors.bit_errors(), ref.info_errors.bit_errors())
        << threads;
    EXPECT_EQ(p.info_errors.frame_errors(), ref.info_errors.frame_errors())
        << threads;
    EXPECT_EQ(p.info_errors.bits(), ref.info_errors.bits()) << threads;
    EXPECT_EQ(p.undetected_errors, ref.undetected_errors) << threads;
    EXPECT_EQ(p.iterations.count(), ref.iterations.count()) << threads;
    // RunningStats fold in frame order: bit-identical doubles.
    EXPECT_EQ(p.iterations.mean(), ref.iterations.mean()) << threads;
    EXPECT_EQ(p.iterations.variance(), ref.iterations.variance()) << threads;
    EXPECT_EQ(p.iterations.min(), ref.iterations.min()) << threads;
    EXPECT_EQ(p.iterations.max(), ref.iterations.max()) << threads;
  }
}

TEST(ParallelSimulator, LegacyAdapterMatchesFactoryPath) {
  const auto code = codes::make_code({Standard::kWimax80216e, Rate::kR12,
                                      24});
  core::ReconfigurableDecoder dec(code, {.stop_on_codeword = true});
  sim::Simulator legacy(code, sim::adapt(dec), quick_config());
  sim::Simulator pooled(
      code, sim::fixed_decoder_factory(code, {.stop_on_codeword = true}),
      quick_config());
  const auto a = legacy.run_point(1.5);
  const auto b = pooled.run_point(1.5);
  EXPECT_EQ(a.frames, b.frames);
  EXPECT_EQ(a.info_errors.bit_errors(), b.info_errors.bit_errors());
  EXPECT_EQ(a.iterations.mean(), b.iterations.mean());
}

TEST(ParallelSimulator, AdaptiveStopMatchesSequentialRule) {
  // At -3 dB every frame fails: the stop bound must land exactly at
  // min_frames for every thread count (the sequential rule's answer).
  const auto code = codes::make_code({Standard::kWimax80216e, Rate::kR12,
                                      24});
  const auto factory = sim::fixed_decoder_factory(
      code, {.stop_on_codeword = true});
  for (int threads : {1, 4}) {
    sim::SimConfig cfg = quick_config();
    cfg.min_frames = 5;
    cfg.max_frames = 1000;
    cfg.target_frame_errors = 3;
    cfg.threads = threads;
    const auto p = sim::Simulator(code, factory, cfg).run_point(-3.0);
    EXPECT_EQ(p.frames, 5) << threads;
  }
}

TEST(ParallelSimulator, BaselineFactoryRunsMultiThreaded) {
  const auto code = codes::make_code({Standard::kWimax80216e, Rate::kR12,
                                      24});
  auto cfg = quick_config();
  cfg.threads = 4;
  sim::Simulator s(code,
                   sim::baseline_decoder_factory(
                       [&code]() {
                         return std::make_unique<baseline::LayeredBP>(code);
                       },
                       20),
                   cfg);
  const auto p = s.run_point(6.0);
  EXPECT_EQ(p.info_errors.bit_errors(), 0u);
  EXPECT_GE(p.frames, 10);
}

TEST(ParallelSimulator, SharedPtrAdapterOwnsDecoder) {
  const auto code = codes::make_code({Standard::kWimax80216e, Rate::kR12,
                                      24});
  sim::DecodeFn fn;
  {
    // The adapter must keep the decoder alive after this scope ends (the
    // by-reference overloads are lvalue-only; binding a temporary is a
    // deleted overload).
    auto dec = std::make_shared<const baseline::LayeredBP>(code);
    fn = sim::adapt(std::move(dec), 20);
  }
  sim::Simulator s(code, std::move(fn), quick_config());
  EXPECT_EQ(s.run_point(6.0).info_errors.bit_errors(), 0u);
}

TEST(ParallelSimulator, WorkerExceptionPropagates) {
  const auto code = codes::make_code({Standard::kWimax80216e, Rate::kR12,
                                      24});
  sim::DecoderFactory bad = []() {
    return sim::DecodeFn([](std::span<const double>) -> sim::DecodeOutcome {
      throw std::runtime_error("decoder blew up");
    });
  };
  auto cfg = quick_config();
  cfg.threads = 2;
  sim::Simulator s(code, bad, cfg);
  EXPECT_THROW(s.run_point(2.0), std::runtime_error);
}

// The batched worker path (SoA min-sum kernel filling its lanes) must
// produce statistics bit-identical to single-frame decoding with the same
// arithmetic, for any batch size and thread count — the ordered fold and
// counter-based substreams make chunk claiming invisible.
TEST(ParallelSimulator, BatchedStatsMatchSingleFrame) {
  const auto code = codes::make_code({Standard::kWimax80216e, Rate::kR12,
                                      24});
  const core::DecoderConfig dc{.kernel = core::CnuKernel::kMinSum,
                               .stop_on_codeword = true};
  auto cfg = quick_config();
  cfg.min_frames = 20;
  cfg.max_frames = 200;
  cfg.target_frame_errors = 8;  // adaptive stop fires mid-run at 1 dB
  const auto ref =
      sim::Simulator(code, sim::fixed_decoder_factory(code, dc), cfg)
          .run_point(1.0);
  EXPECT_GT(ref.info_errors.frame_errors(), 0u);

  for (const int batch : {0, 1, 5}) {       // 0 = kernel-native width
    for (const int threads : {1, 3}) {
      sim::SimConfig bc = cfg;
      bc.batch = batch;
      bc.threads = threads;
      const auto p =
          sim::Simulator(code, sim::batched_fixed_decoder_factory(code, dc),
                         bc)
              .run_point(1.0);
      EXPECT_EQ(p.frames, ref.frames) << batch << "/" << threads;
      EXPECT_EQ(p.info_errors.bit_errors(), ref.info_errors.bit_errors())
          << batch << "/" << threads;
      EXPECT_EQ(p.info_errors.frame_errors(),
                ref.info_errors.frame_errors())
          << batch << "/" << threads;
      EXPECT_EQ(p.iterations.mean(), ref.iterations.mean())
          << batch << "/" << threads;
      EXPECT_EQ(p.undetected_errors, ref.undetected_errors)
          << batch << "/" << threads;
    }
  }
}

TEST(ParallelSimulator, BatchedFactoryValidation) {
  const auto code = codes::make_code({Standard::kWimax80216e, Rate::kR12,
                                      24});
  EXPECT_THROW(sim::Simulator(code, sim::BatchDecoderFactory{},
                              quick_config()),
               std::invalid_argument);
  auto neg = quick_config();
  neg.batch = -1;
  EXPECT_THROW(
      sim::Simulator(code,
                     sim::batched_fixed_decoder_factory(
                         code, {.kernel = core::CnuKernel::kMinSum}),
                     neg),
      std::invalid_argument);
}

TEST(Simulator, InvalidConfigThrows) {
  const auto code = codes::make_code({Standard::kWimax80216e, Rate::kR12,
                                      24});
  EXPECT_THROW(sim::Simulator(code, nullptr, quick_config()),
               std::invalid_argument);
  auto bad = quick_config();
  bad.max_frames = 1;
  bad.min_frames = 10;
  core::ReconfigurableDecoder dec(code, {});
  EXPECT_THROW(sim::Simulator(code, sim::adapt(dec), bad),
               std::invalid_argument);
  auto neg = quick_config();
  neg.threads = -1;
  EXPECT_THROW(
      sim::Simulator(code, sim::fixed_decoder_factory(code, {}), neg),
      std::invalid_argument);
  EXPECT_THROW(
      sim::Simulator(code, sim::DecoderFactory{}, quick_config()),
      std::invalid_argument);
}

// ---- 5G NR through the full simulation chain --------------------------------

TEST(Simulator, NrWaterfallImprovesWithSnr) {
  // Reduced-frame sanity of the acceptance criterion: a rate-matched NR
  // sweep must show monotone BER improvement with SNR.
  const auto code = codes::make_code(
      {codes::Standard::kNr5g, codes::Rate::kR13, 36});
  auto factory = sim::fixed_decoder_factory(
      code, {.max_iterations = 10,
             .kernel = core::CnuKernel::kMinSum,
             .stop_on_codeword = true});
  sim::SimConfig sc;
  sc.seed = 9;
  sc.min_frames = 60;
  sc.max_frames = 60;
  sc.target_frame_errors = 1000;  // never stop early: fixed budget
  sc.threads = 2;
  sim::Simulator simulator(code, factory, sc);
  const auto points = simulator.sweep({0.5, 2.0, 3.5});
  ASSERT_EQ(points.size(), 3u);
  // Monotone non-increasing BER, and the high-SNR point decodes cleanly
  // by a wide margin.
  EXPECT_GE(points[0].ber(), points[1].ber());
  EXPECT_GE(points[1].ber(), points[2].ber());
  EXPECT_GT(points[0].ber(), 1e-3);  // low SNR: genuinely noisy
  EXPECT_LT(points[2].ber(), points[0].ber() / 4.0);
}

TEST(Simulator, NrRateMatchedAndFillerFrames) {
  // E < sendable plus fillers: the chain transmits exactly E bits and
  // counts errors over the payload only.
  const auto code = codes::make_nr_code(codes::Rate::kR15, 16, 600, 24);
  ASSERT_EQ(code.transmitted_bits(), 600);
  auto factory = sim::fixed_decoder_factory(
      code, {.max_iterations = 10,
             .kernel = core::CnuKernel::kMinSum,
             .stop_on_codeword = true});
  sim::SimConfig sc;
  sc.seed = 4;
  sc.min_frames = 40;
  sc.max_frames = 40;
  sc.target_frame_errors = 1000;
  sc.threads = 2;
  sim::Simulator simulator(code, factory, sc);
  const auto p = simulator.run_point(4.0);
  EXPECT_EQ(p.frames, 40);
  // BER is measured over payload bits (fillers stripped).
  EXPECT_EQ(p.info_errors.bits(), 40ull *
            static_cast<unsigned long long>(code.payload_bits()));
  EXPECT_LT(p.fer(), 0.6);  // rate 1/5 mother code at 4 dB decodes mostly
}

TEST(Simulator, NrStatisticsAreThreadCountInvariant) {
  const auto code = codes::make_code(
      {codes::Standard::kNr5g, codes::Rate::kR15, 16});
  const core::DecoderConfig cfg{.max_iterations = 6,
                                .kernel = core::CnuKernel::kMinSum,
                                .stop_on_codeword = true};
  sim::SimConfig sc;
  sc.seed = 31;
  sc.min_frames = 30;
  sc.max_frames = 120;
  sc.target_frame_errors = 8;
  auto run = [&](int threads, int batch) {
    sim::SimConfig c = sc;
    c.threads = threads;
    c.batch = batch;
    if (batch)
      return sim::Simulator(code,
                            sim::batched_fixed_decoder_factory(code, cfg),
                            c)
          .run_point(1.5);
    return sim::Simulator(code, sim::fixed_decoder_factory(code, cfg), c)
        .run_point(1.5);
  };
  const auto a = run(1, 0);
  const auto b = run(4, 0);
  const auto c = run(3, 5);  // batched SoA kernel, odd batch size
  for (const auto* p : {&b, &c}) {
    EXPECT_EQ(p->frames, a.frames);
    EXPECT_EQ(p->info_errors.bit_errors(), a.info_errors.bit_errors());
    EXPECT_EQ(p->info_errors.frame_errors(), a.info_errors.frame_errors());
    EXPECT_DOUBLE_EQ(p->iterations.mean(), a.iterations.mean());
  }
}

}  // namespace
