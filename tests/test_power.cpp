#include <gtest/gtest.h>

#include "ldpc/power/area_model.hpp"
#include "ldpc/power/power_model.hpp"

namespace {

using namespace ldpc;
using arch::ChipDimensions;
using power::AreaModel;
using power::PowerModel;

// ---- area model (Table 2 / Table 3) ----------------------------------------

TEST(AreaModel, ReproducesTable2Anchors) {
  const AreaModel m;
  EXPECT_NEAR(m.siso_area_um2(core::Radix::kR2, 450), 6978, 1);
  EXPECT_NEAR(m.siso_area_um2(core::Radix::kR2, 200), 6197, 1);
  EXPECT_NEAR(m.siso_area_um2(core::Radix::kR4, 450), 12774, 1);
  EXPECT_NEAR(m.siso_area_um2(core::Radix::kR4, 200), 8944, 1);
}

TEST(AreaModel, MidpointWithinFivePercentOfTable2) {
  const AreaModel m;
  EXPECT_NEAR(m.siso_area_um2(core::Radix::kR2, 325), 6367, 6367 * 0.05);
  EXPECT_NEAR(m.siso_area_um2(core::Radix::kR4, 325), 10077, 10077 * 0.05);
}

TEST(AreaModel, EtaMatchesTable2Trend) {
  // Table 2: eta = 1.09 / 1.26 / 1.39 at 450 / 325 / 200 MHz.
  const AreaModel m;
  EXPECT_NEAR(m.efficiency_eta(450), 1.09, 0.02);
  EXPECT_NEAR(m.efficiency_eta(200), 1.39, 0.02);
  EXPECT_NEAR(m.efficiency_eta(325), 1.26, 0.07);
  // Efficiency improves as the clock relaxes.
  EXPECT_GT(m.efficiency_eta(200), m.efficiency_eta(325));
  EXPECT_GT(m.efficiency_eta(325), m.efficiency_eta(450));
}

TEST(AreaModel, AreaGrowsWithClockTarget) {
  const AreaModel m;
  double prev = 0;
  for (double f : {100.0, 200.0, 325.0, 450.0, 500.0}) {
    const double a = m.siso_area_um2(core::Radix::kR4, f);
    EXPECT_GT(a, prev);
    prev = a;
  }
  EXPECT_THROW(m.siso_area_um2(core::Radix::kR2, 0), std::invalid_argument);
}

TEST(AreaModel, ChipTotalMatchesTable3) {
  // Paper chip: z_max=96, Radix-4, 450 MHz -> 3.5 mm^2.
  const AreaModel m;
  const auto a = m.chip_area(ChipDimensions{}, core::Radix::kR4, 450);
  EXPECT_NEAR(a.total_mm2(), 3.5, 0.2);
  // SISO array is the single largest datapath block (Fig. 8).
  EXPECT_GT(a.sisos_mm2, a.lambda_mem_mm2);
  EXPECT_GT(a.sisos_mm2, a.shifter_mm2);
  EXPECT_GT(a.sisos_mm2, 1.0);
}

TEST(AreaModel, SmallerChipIsSmaller) {
  const AreaModel m;
  ChipDimensions half{.z_max = 48, .block_cols_max = 24, .layers_max = 12,
                      .row_degree_max = 24};
  EXPECT_LT(m.chip_area(half, core::Radix::kR4, 450).total_mm2(),
            m.chip_area(ChipDimensions{}, core::Radix::kR4, 450).total_mm2());
  EXPECT_THROW(m.chip_area(ChipDimensions{}, core::Radix::kR4, 450, 0, 10),
               std::invalid_argument);
}

TEST(AreaModel, ShifterAreaFollowsChipZMax) {
  // The shifter block scales with the chip's own z_max (stages * lanes
  // from arch::CircularShifter), not the paper's 96-lane constant: a
  // 384-lane NR-scale chip has 9 stages of 384 muxes vs 7 of 96.
  const AreaModel m;
  const ChipDimensions paper{};
  const ChipDimensions nr_scale{.z_max = 384, .block_cols_max = 68,
                                .layers_max = 48, .row_degree_max = 32};
  const ChipDimensions tiny{.z_max = 2, .block_cols_max = 24,
                            .layers_max = 12, .row_degree_max = 24};
  const auto a96 = m.chip_area(paper, core::Radix::kR4, 450);
  const auto a384 = m.chip_area(nr_scale, core::Radix::kR4, 450);
  const auto a2 = m.chip_area(tiny, core::Radix::kR4, 450);
  EXPECT_NEAR(a384.shifter_mm2 / a96.shifter_mm2,
              (9.0 * 384.0) / (7.0 * 96.0), 1e-9);
  EXPECT_NEAR(a2.shifter_mm2 / a96.shifter_mm2, 2.0 / (7.0 * 96.0), 1e-9);
  // The NR-scale chip is dominated by its 4x SISO array and memories.
  EXPECT_GT(a384.total_mm2(), 3.0 * a96.total_mm2());
}

// ---- power model (Table 3 / Fig. 9) -----------------------------------------

TEST(PowerModel, PeakMatchesPaper410mW) {
  const PowerModel m;  // 450 MHz, 1.0 V
  const auto p = m.peak(ChipDimensions{}, 96);
  EXPECT_NEAR(p.total_mw(), 410, 2);
}

TEST(PowerModel, BankingEndpointMatchesFig9b) {
  // Fig. 9(b): smallest WiMax block (576 bits, z=24) sits around 260 mW.
  const PowerModel m;
  const auto p = m.peak(ChipDimensions{}, 24);
  EXPECT_NEAR(p.total_mw(), 260, 10);
}

TEST(PowerModel, PowerMonotoneInActiveLanes) {
  const PowerModel m;
  double prev = 0;
  for (int z = 24; z <= 96; z += 4) {
    const double p = m.peak(ChipDimensions{}, z).total_mw();
    EXPECT_GT(p, prev);
    prev = p;
  }
}

TEST(PowerModel, EarlyTerminationReachesPaperSavings) {
  // Fig. 9(a): up to 65% reduction when the channel is good (avg ~3 of 10
  // iterations).
  const PowerModel m;
  const double full = m.average_mw(ChipDimensions{}, 96, 10, 10);
  const double good = m.average_mw(ChipDimensions{}, 96, 3, 10);
  EXPECT_NEAR(full, 410, 2);
  const double saving = 1.0 - good / full;
  EXPECT_GT(saving, 0.60);
  EXPECT_LT(saving, 0.70);
}

TEST(PowerModel, LeakageFloorsTheGating) {
  const PowerModel m;
  // Even at a hypothetical zero-iteration duty the leakage remains.
  const double idle = m.average_mw(ChipDimensions{}, 96, 0, 10);
  EXPECT_GT(idle, 20);
  EXPECT_LT(idle, 35);
}

TEST(PowerModel, FrequencyAndVoltageScaling) {
  const PowerModel half(225.0, 1.0);
  const PowerModel lowv(450.0, 0.9);
  const PowerModel base(450.0, 1.0);
  const auto dims = ChipDimensions{};
  const double pb = base.peak(dims, 96).total_mw();
  const double ph = half.peak(dims, 96).total_mw();
  const double pv = lowv.peak(dims, 96).total_mw();
  // Dynamic power halves with frequency (leakage does not scale here).
  EXPECT_LT(ph, pb * 0.55);
  // 0.9 V saves ~19% of dynamic power.
  EXPECT_LT(pv, pb * 0.85 + 27);
  EXPECT_THROW(PowerModel(0.0, 1.0), std::invalid_argument);
}

TEST(PowerModel, InvalidArgsThrow) {
  const PowerModel m;
  EXPECT_THROW(m.peak(ChipDimensions{}, 0), std::invalid_argument);
  EXPECT_THROW(m.peak(ChipDimensions{}, 97), std::invalid_argument);
  EXPECT_THROW(m.average_mw(ChipDimensions{}, 96, 11, 10),
               std::invalid_argument);
  EXPECT_THROW(m.average_mw(ChipDimensions{}, 96, 5, 0),
               std::invalid_argument);
}

TEST(PowerModel, EnergyPerBitDerivedConsistently) {
  const PowerModel m;
  // 410 mW at 1 Gbps = 0.41 nJ/bit.
  const double e =
      m.energy_per_bit_nj(ChipDimensions{}, 96, 10, 10, 1e9);
  EXPECT_NEAR(e, 0.41, 0.01);
  EXPECT_THROW(m.energy_per_bit_nj(ChipDimensions{}, 96, 10, 10, 0),
               std::invalid_argument);
}

}  // namespace
