// Quickstart: encode one frame, push it through an AWGN channel, decode it
// with the reconfigurable fixed-point decoder, and print what happened.
//
//   ./quickstart [--snr 2.5] [--standard wimax|wlan] [--z 96] [--seed 1]
//
// This is the smallest end-to-end use of the library's public API:
//   registry -> encoder -> modulate -> AWGN -> demap -> decoder.
#include <iostream>

#include "ldpc/channel/channel.hpp"
#include "ldpc/codes/registry.hpp"
#include "ldpc/core/decoder.hpp"
#include "ldpc/enc/encoder.hpp"
#include "ldpc/util/args.hpp"

using namespace ldpc;

int main(int argc, char** argv) {
  const util::Args args(argc, argv, {"snr", "standard", "z", "seed"});
  const double snr_db = args.get_or("snr", 2.5);
  const std::string std_name = args.get_or("standard", std::string{"wimax"});
  const auto standard = std_name == "wlan" ? codes::Standard::kWlan80211n
                                           : codes::Standard::kWimax80216e;
  const int default_z = standard == codes::Standard::kWlan80211n ? 81 : 96;
  const int z = static_cast<int>(args.get_or("z", (long long)default_z));
  util::Xoshiro256 rng(
      static_cast<std::uint64_t>(args.get_or("seed", 1LL)));

  // 1. Pick a code from the registry (rate 1/2 of the chosen standard).
  const auto code = codes::make_code({standard, codes::Rate::kR12, z});
  std::cout << "code: " << code.name() << "  n=" << code.n()
            << " k=" << code.k_info() << " rate=" << code.rate() << "\n";

  // 2. Encode random information bits.
  const auto encoder = enc::make_encoder(code);
  std::vector<std::uint8_t> info(static_cast<std::size_t>(code.k_info()));
  enc::random_bits(rng, info);
  const auto codeword = encoder->encode(info);

  // 3. BPSK over AWGN at the requested Eb/N0.
  auto frame = channel::modulate(codeword, channel::Modulation::kBpsk);
  const double sigma = channel::ebn0_to_sigma(snr_db, code.rate(),
                                              channel::Modulation::kBpsk);
  channel::AwgnChannel(sigma).transmit(frame.samples, rng);
  const auto llr = channel::demap_llr(frame, sigma);

  const auto rx_hard = channel::hard_decision(llr);
  std::cout << "channel: Eb/N0=" << snr_db << " dB, sigma=" << sigma
            << ", raw bit errors="
            << channel::count_bit_errors(codeword, rx_hard) << "/"
            << code.n() << "\n";

  // 4. Decode with the paper's fixed-point layered decoder (8-bit
  //    messages, Radix-4 SISO, early termination enabled).
  core::ReconfigurableDecoder decoder(
      code, {.max_iterations = 10,
             .early_termination = {.enabled = true, .threshold_raw = 8}});
  const auto result = decoder.decode(llr);

  std::cout << "decode: iterations=" << result.iterations
            << (result.early_terminated ? " (early termination)" : "")
            << ", codeword valid=" << (result.converged ? "yes" : "no")
            << "\n";
  int errors = 0;
  for (std::size_t i = 0; i < info.size(); ++i)
    errors += result.bits[i] != info[i] ? 1 : 0;
  std::cout << "result: " << errors << " information-bit errors after "
            << "decoding ("
            << (errors == 0 ? "frame recovered" : "frame lost") << ")\n";
  return errors == 0 ? 0 : 1;
}
