// Multi-standard streaming: the paper's headline feature in action.
//
// A single DecoderChip instance serves an interleaved stream of frame
// bursts from different standards and modes — 802.16e rate 1/2, 802.11n
// rate 3/4, 802.16e rate 5/6, 5G NR BG1 (punctured, rate-matched
// transmission) — reconfiguring dynamically between bursts
// like a 4G handset switching networks, while tracking per-mode statistics
// and the power saved by deactivating unused SISO lanes. Each burst is
// decoded through the chip's batch API: one reconfiguration amortised over
// the whole burst, scratch reused across frames.
//
//   ./multistandard_stream [--frames 12] [--burst 4] [--snr 3.0] [--seed 7]
#include <iostream>

#include "ldpc/arch/decoder_chip.hpp"
#include "ldpc/channel/channel.hpp"
#include "ldpc/codes/registry.hpp"
#include "ldpc/enc/encoder.hpp"
#include "ldpc/power/power_model.hpp"
#include "ldpc/sim/simulator.hpp"
#include "ldpc/util/args.hpp"
#include "ldpc/util/stats.hpp"
#include "ldpc/util/table.hpp"

using namespace ldpc;

namespace {

struct Mode {
  codes::QCCode code;
  std::unique_ptr<enc::Encoder> encoder;
  double snr_db;
  int frames_ok = 0, frames = 0;
  util::RunningStats iterations;

  Mode(const codes::CodeId& id, double snr)
      : code(codes::make_code(id)), encoder(enc::make_encoder(code)),
        snr_db(snr) {}
};

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv, {"frames", "burst", "snr", "seed"});
  const int rounds = static_cast<int>(args.get_or("frames", 12LL));
  const int burst = static_cast<int>(args.get_or("burst", 4LL));
  const double base_snr = args.get_or("snr", 3.0);
  util::Xoshiro256 rng(
      static_cast<std::uint64_t>(args.get_or("seed", 7LL)));
  if (burst <= 0) {
    std::cerr << "error: --burst must be positive\n";
    return 2;
  }

  // The traffic mix: a WiMax data burst, a WLAN frame, a high-rate burst,
  // and a 5G NR slot (BG1, always-punctured first columns, transmitted
  // length E < n).
  std::vector<Mode> modes;
  modes.reserve(4);  // encoders reference their Mode's code: no relocation
  modes.emplace_back(
      codes::CodeId{codes::Standard::kWimax80216e, codes::Rate::kR12, 96},
      base_snr);
  modes.emplace_back(
      codes::CodeId{codes::Standard::kWlan80211n, codes::Rate::kR34, 81},
      base_snr + 1.5);
  modes.emplace_back(
      codes::CodeId{codes::Standard::kWimax80216e, codes::Rate::kR56, 24},
      base_snr + 2.5);
  modes.emplace_back(
      codes::CodeId{codes::Standard::kNr5g, codes::Rate::kR13, 96},
      base_snr);

  // Universal dimensions: the paper chip's architecture scaled to host
  // every registered standard (NR BG1 needs 68 block columns, z <= 384).
  arch::DecoderChip chip(
      arch::ChipDimensions::universal(),
      {.max_iterations = 10,
       .early_termination = {.enabled = true, .threshold_raw = 8}});
  const power::PowerModel pwr(450.0, 1.0);

  std::cout << "streaming " << rounds << " rounds of " << burst
            << "-frame bursts across 4 standards/modes on one chip...\n\n";
  for (int round = 0; round < rounds; ++round) {
    for (auto& mode : modes) {
      // Dynamic reconfiguration (the chip re-programs its layer schedule
      // and gates unused SISO lanes) — once per burst, not per frame.
      chip.configure(mode.code);

      // Frames travel at the transmitted length (= n for the classic
      // standards; E with puncturing for NR).
      const auto tx = static_cast<std::size_t>(mode.code.transmitted_bits());
      const double sigma = channel::ebn0_to_sigma(
          mode.snr_db, mode.code.effective_rate(),
          channel::Modulation::kBpsk);

      std::vector<std::uint8_t> info(
          static_cast<std::size_t>(mode.code.payload_bits()));
      std::vector<std::vector<std::uint8_t>> sent(
          static_cast<std::size_t>(burst));
      std::vector<double> llrs(tx * static_cast<std::size_t>(burst));
      for (int f = 0; f < burst; ++f) {
        enc::random_bits(rng, info);
        sent[static_cast<std::size_t>(f)] = mode.encoder->encode(info);
        const auto llr =
            sim::transmit_llrs(mode.code, sent[static_cast<std::size_t>(f)],
                               channel::Modulation::kBpsk, sigma, rng);
        std::copy(llr.begin(), llr.end(),
                  llrs.begin() + static_cast<std::ptrdiff_t>(f * tx));
      }

      const auto results = chip.decode_batch(llrs);
      for (int f = 0; f < burst; ++f) {
        const auto& r = results[static_cast<std::size_t>(f)];
        const auto& cw = sent[static_cast<std::size_t>(f)];
        bool ok = r.functional.converged;
        for (std::size_t i = 0; ok && i < info.size(); ++i)
          ok = r.functional.bits[i] == cw[i];
        ++mode.frames;
        mode.frames_ok += ok ? 1 : 0;
        mode.iterations.add(r.functional.iterations);
      }
    }
  }

  util::Table t("per-mode results (one shared chip)");
  t.header({"mode", "Eb/N0", "frames ok", "avg iter", "active SISOs",
            "avg power mW"});
  for (auto& mode : modes) {
    chip.configure(mode.code);
    const double mw = pwr.average_mw({}, mode.code.z(),
                                     mode.iterations.mean(), 10);
    t.row({mode.code.name(), util::fmt_fixed(mode.snr_db, 1),
           std::to_string(mode.frames_ok) + "/" +
               std::to_string(mode.frames),
           util::fmt_fixed(mode.iterations.mean(), 2),
           std::to_string(mode.code.z()), util::fmt_fixed(mw, 0)});
  }
  t.print(std::cout);
  std::cout << "\nnote how the small-z mode draws less power (fewer active"
               " lanes, Fig. 9b) and good channels finish in fewer"
               " iterations (early termination, Fig. 9a).\n";
  return 0;
}
