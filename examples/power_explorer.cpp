// Power explorer: interactive what-if tool for the chip's power knobs.
//
//   ./power_explorer [--fclk 450] [--vdd 1.0] [--et-threshold 8]
//                    [--snr 3.0] [--frames 60]
//
// For a chosen operating point it reports, per 802.16e block size:
// measured average iterations (with the paper's early-termination rule at
// the given threshold), average power, energy per bit, and what each
// power-saving scheme contributes — a combined view of Fig. 9(a) and (b).
#include <iostream>

#include "ldpc/arch/throughput.hpp"
#include "ldpc/codes/registry.hpp"
#include "ldpc/power/power_model.hpp"
#include "ldpc/sim/simulator.hpp"
#include "ldpc/util/args.hpp"
#include "ldpc/util/table.hpp"

using namespace ldpc;

int main(int argc, char** argv) {
  const util::Args args(argc, argv,
                        {"fclk", "vdd", "et-threshold", "snr", "frames",
                         "seed"});
  const double fclk = args.get_or("fclk", 450.0);
  const double vdd = args.get_or("vdd", 1.0);
  const int threshold = static_cast<int>(args.get_or("et-threshold", 8LL));
  const double snr = args.get_or("snr", 3.0);
  const int frames = static_cast<int>(args.get_or("frames", 60LL));
  const int max_iter = 10;

  const power::PowerModel pwr(fclk, vdd);
  const arch::ChipDimensions dims{};

  std::cout << "operating point: " << fclk << " MHz, " << vdd << " V, "
            << "Eb/N0 " << snr << " dB, ET threshold " << threshold
            << " LSB\n\n";

  util::Table t("power per 802.16e rate-1/2 block size");
  t.header({"block", "z", "avg iter", "P no-ET mW", "P +ET mW",
            "P +ET+banking mW", "throughput Mbps", "nJ/bit"});
  for (int z : {24, 48, 72, 96}) {
    const auto code = codes::make_code(
        {codes::Standard::kWimax80216e, codes::Rate::kR12, z});
    core::ReconfigurableDecoder dec(
        code,
        {.max_iterations = max_iter,
         .early_termination = {.enabled = true, .threshold_raw = threshold}});
    sim::SimConfig sc;
    sc.seed = static_cast<std::uint64_t>(args.get_or("seed", 1LL));
    sc.min_frames = frames;
    sc.max_frames = frames;
    sc.target_frame_errors = 1 << 30;
    sim::Simulator sim(code, sim::adapt(dec), sc);
    const auto p = sim.run_point(snr);

    // Stacked savings: baseline (all lanes, all iterations) -> +ET
    // (iteration gating at full width) -> +banking (only z lanes).
    const double p_base = pwr.average_mw(dims, dims.z_max, max_iter,
                                         max_iter);
    const double p_et =
        pwr.average_mw(dims, dims.z_max, p.avg_iterations(), max_iter);
    const double p_both =
        pwr.average_mw(dims, z, p.avg_iterations(), max_iter);

    arch::PipelineConfig pc;
    pc.include_shifter_latency = true;
    const auto tp = arch::modeled_throughput(code, pc, fclk * 1e6,
                                             max_iter);
    const double nj = pwr.energy_per_bit_nj(dims, z, p.avg_iterations(),
                                            max_iter, tp.modeled_bps);
    t.row({std::to_string(code.n()), std::to_string(z),
           util::fmt_fixed(p.avg_iterations(), 2),
           util::fmt_fixed(p_base, 0), util::fmt_fixed(p_et, 0),
           util::fmt_fixed(p_both, 0),
           util::fmt_fixed(tp.modeled_bps / 1e6, 0),
           util::fmt_fixed(nj, 2)});
  }
  t.print(std::cout);
  std::cout << "\ncolumns stack the paper's two schemes: early termination"
               " gates iterations (Fig. 9a), banking gates idle lanes"
               " (Fig. 9b).\n";
  return 0;
}
