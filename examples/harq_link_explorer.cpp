// Closed-loop HARQ link explorer: goodput-vs-SNR and residual-FER-per-
// round tables for AWGN vs block-Rayleigh, with and without incremental-
// redundancy combining.
//
//   ./harq_link_explorer [--from -4.0 --to 2.0 --step 1.0] [--rounds 4]
//                        [--users 4] [--blocks 48] [--coherence 0]
//                        [--threads 0] [--seed 1] [--csv]
//
// Each cell runs the full closed loop (sim::LinkSimulator) over an NR
// BG2 z=36 E=1500 transport block: transmit rv0, decode, retransmit the
// NACKs with the next redundancy version of the {0, 2, 3, 1} sequence,
// combining rounds in the HARQ soft buffer before each retry. The
// "no-IR" columns rerun the identical channel realisations with
// combining off — every round decodes its own LLRs alone — so the gap
// between the column pairs IS the combining gain, same noise, same
// fades.
//
// What the tables show:
//   - On AWGN the SNR is the SNR: round 0 either clears it or the link
//     is simply below threshold, and combining mostly converts repeat
//     energy near the waterfall.
//   - On Rayleigh each round sees fresh fades, so retransmission is
//     diversity: residual FER collapses round over round, and IR
//     combining delivers at Es/N0 where the no-IR loop stalls. The
//     cumulative Eb/N0 column prices that reliability in energy per
//     delivered payload bit.
#include <iostream>
#include <vector>

#include "ldpc/codes/registry.hpp"
#include "ldpc/sim/harq_link.hpp"
#include "ldpc/util/args.hpp"
#include "ldpc/util/table.hpp"

using namespace ldpc;

namespace {

core::DecoderConfig decoder_config() {
  core::DecoderConfig cfg;
  cfg.kernel = core::CnuKernel::kMinSum;
  cfg.max_iterations = 10;
  cfg.stop_on_codeword = true;
  cfg.early_termination = {.enabled = true, .threshold_raw = 8};
  return cfg;
}

sim::HarqConfig link_config(const util::Args& args,
                            channel::ChannelKind kind, bool combine) {
  sim::HarqConfig cfg;
  cfg.seed = static_cast<std::uint64_t>(args.get_or("seed", 1LL));
  cfg.channel = kind;
  cfg.coherence_bits = static_cast<int>(args.get_or("coherence", 0LL));
  cfg.max_rounds = static_cast<int>(args.get_or("rounds", 4LL));
  cfg.combine = combine;
  cfg.users = static_cast<int>(args.get_or("users", 4LL));
  cfg.blocks_per_user = static_cast<int>(args.get_or("blocks", 48LL));
  cfg.threads = static_cast<int>(args.get_or("threads", 0LL));
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const util::Args args(argc, argv,
                          {"from", "to", "step", "rounds", "users", "blocks",
                           "coherence", "threads", "seed", "csv"});
    const bool csv = args.get_or("csv", false);
    const double from = args.get_or("from", -4.0);
    const double to = args.get_or("to", 2.0);
    const double step = args.get_or("step", 1.0);

    std::vector<double> esn0s;
    for (double db = from; db <= to + 1e-9; db += step) esn0s.push_back(db);

    const auto code = codes::make_nr_code(codes::Rate::kR15, 36, 1500, 40);
    const std::vector<const codes::QCCode*> modes{&code};
    const auto decoder = decoder_config();

    const struct {
      const char* name;
      channel::ChannelKind kind;
    } channels[] = {{"awgn", channel::ChannelKind::kAwgn},
                    {"rayleigh", channel::ChannelKind::kRayleighBlock}};

    for (const auto& ch : channels) {
      sim::LinkSimulator ir(modes, decoder,
                            link_config(args, ch.kind, /*combine=*/true));
      sim::LinkSimulator no_ir(modes, decoder,
                               link_config(args, ch.kind, /*combine=*/false));
      const auto with = ir.sweep(esn0s);
      const auto without = no_ir.sweep(esn0s);

      util::Table goodput(std::string("goodput vs Es/N0 — ") + ch.name +
                          ", NR BG2 z=36 E=1500, " +
                          std::to_string(with.front().rounds.size()) +
                          " rounds (one-shot rate " +
                          util::fmt_fixed(code.effective_rate(), 3) + ")");
      goodput.header({"Es/N0 dB", "goodput IR", "goodput no-IR",
                      "resid FER IR", "resid FER no-IR", "cum Eb/N0 IR",
                      "avg rounds IR"});
      for (std::size_t p = 0; p < with.size(); ++p) {
        goodput.row({util::fmt_fixed(with[p].esn0_db, 1),
                     util::fmt_fixed(with[p].goodput(), 3),
                     util::fmt_fixed(without[p].goodput(), 3),
                     util::fmt_fixed(with[p].residual_fer(), 3),
                     util::fmt_fixed(without[p].residual_fer(), 3),
                     with[p].payload_bits_delivered
                         ? util::fmt_fixed(with[p].cumulative_ebn0_db(), 2)
                         : "-",
                     util::fmt_fixed(with[p].rounds_to_ack.mean(), 2)});
      }
      if (csv)
        goodput.print_csv(std::cout);
      else
        goodput.print(std::cout);
      std::cout << '\n';

      util::Table fer(std::string("residual FER per round — ") + ch.name +
                      " (IR / no-IR at each Es/N0)");
      std::vector<std::string> head{"Es/N0 dB"};
      for (std::size_t r = 0; r < with.front().rounds.size(); ++r)
        head.push_back("after r" + std::to_string(r));
      fer.header(head);
      for (std::size_t p = 0; p < with.size(); ++p) {
        std::vector<std::string> row{util::fmt_fixed(with[p].esn0_db, 1)};
        for (std::size_t r = 0; r < with[p].rounds.size(); ++r) {
          const auto& a = with[p].rounds[r];
          const auto& b = without[p].rounds[r];
          row.push_back(a.attempts ? util::fmt_fixed(a.residual_fer(), 3) +
                                         " / " +
                                         util::fmt_fixed(b.residual_fer(), 3)
                                   : "-");
        }
        fer.row(row);
      }
      if (csv)
        fer.print_csv(std::cout);
      else
        fer.print(std::cout);
      std::cout << '\n';
    }

    std::cout
        << "reading the tables: the IR / no-IR pairs decode the identical "
           "channel realisations, so their gap is the combining gain "
           "alone. On Rayleigh the per-round FER columns collapse with "
           "round index (diversity + accumulated mutual information); "
           "cumulative Eb/N0 shows the energy each point actually spent "
           "per delivered payload bit.\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "harq_link_explorer: " << e.what() << '\n';
    return 1;
  }
}
