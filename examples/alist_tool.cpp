// alist_tool: export any registered code to MacKay alist format, import an
// external alist matrix and analyse it, list the registered mode set, or
// regenerate the golden-vector regression data locked by
// tests/test_golden.cpp.
//
//   ./alist_tool export --standard wimax --rate 1/2 --z 96 > h2304.alist
//   ./alist_tool import h2304.alist [--z 96]
//   ./alist_tool modes [--standard nr]
//   ./alist_tool golden --outdir tests/data
//
// Import prints the matrix profile (dimensions, degree distributions) and
// attempts QC reconstruction when --z is given, so externally generated
// matrices can be brought into the registry-independent decoding path.
// Modes lists every registered CodeId (standard, rate, z, n, payload,
// transmission scheme) so the expanded multi-standard mode set is
// discoverable. Golden writes, per standard, one file
// golden_<slug>.txt holding, for EVERY registered mode of that standard
// (plus the shared NR rate-matched cases), one canned quantised LLR frame
// (a real encode -> transmit chain -> AWGN -> demap -> deposit, including
// puncturing/fillers/rate matching, deterministically seeded) plus the
// expected hard decisions of the fixed-point and float min-sum datapaths;
// the regression suite decodes the frames through the scalar fixed,
// batched-fixed (SoA), chip and float engines and asserts bit-exactness.
#include <fstream>
#include <iostream>
#include <map>

#include "ldpc/channel/channel.hpp"
#include "ldpc/codes/alist.hpp"
#include "ldpc/codes/registry.hpp"
#include "ldpc/core/golden.hpp"
#include "ldpc/core/layer_engine.hpp"
#include "ldpc/enc/encoder.hpp"
#include "ldpc/sim/simulator.hpp"
#include "ldpc/util/args.hpp"
#include "ldpc/util/rng.hpp"
#include "ldpc/util/table.hpp"

using namespace ldpc;

namespace {

// ---- golden-vector regeneration --------------------------------------------
// The decode configuration, file split, rate-matched case list and bit
// packing are shared with tests/test_golden.cpp through
// ldpc/core/golden.hpp — one definition of the generator/checker contract.

void write_golden_entry(std::ostream& out, const codes::QCCode& code,
                        std::uint64_t seed, double ebn0_db) {
  const core::DecoderConfig cfg = core::golden::config();
  util::Xoshiro256 rng(seed);

  std::vector<std::uint8_t> info(
      static_cast<std::size_t>(code.payload_bits()));
  enc::random_bits(rng, info);
  const auto cw = enc::make_encoder(code)->encode(info);
  const double sigma = channel::ebn0_to_sigma(
      ebn0_db, code.effective_rate(), channel::Modulation::kBpsk);
  const auto llr =
      sim::transmit_llrs(code, cw, channel::Modulation::kBpsk, sigma, rng);

  // The stored frame is the POST-deposit raw codes (size n): puncturing,
  // fillers and repetition combining already applied, so every datapath
  // consumes the identical memory image.
  core::LayerEngine fixed_engine(cfg);
  fixed_engine.reconfigure(code);
  std::vector<std::int32_t> raw(static_cast<std::size_t>(code.n()));
  fixed_engine.deposit(llr, raw);
  const auto fixed_result = fixed_engine.run(raw);

  core::FloatLayerEngine float_engine(cfg);
  float_engine.reconfigure(code);
  std::vector<double> deq(raw.size());
  for (std::size_t i = 0; i < raw.size(); ++i)
    deq[i] = raw[i] * cfg.format.lsb();
  const auto float_result = float_engine.run(deq);

  out << "mode " << code.name() << " n " << code.n() << "\nraw";
  for (std::int32_t r : raw) out << ' ' << r;
  out << "\nfixed " << core::golden::bits_to_hex(fixed_result.bits)
      << "\nfloat " << core::golden::bits_to_hex(float_result.bits) << "\n";
}

/// Deterministic per-mode seed from the mode identity (stable under
/// registry reordering).
std::uint64_t golden_seed(const codes::CodeId& id) {
  const std::uint64_t key = (static_cast<std::uint64_t>(id.standard) << 40) ^
                            (static_cast<std::uint64_t>(id.rate) << 32) ^
                            static_cast<std::uint64_t>(id.z);
  return util::substream_seed(0xD1CE'60'1DULL, key);
}

int do_golden(const util::Args& args) {
  const std::string outdir = args.get_or("outdir", std::string{});
  const double ebn0_db = args.get_or("ebn0", 2.0);
  std::size_t entries = 0;

  for (const codes::Standard standard :
       {codes::Standard::kWlan80211n, codes::Standard::kWimax80216e,
        codes::Standard::kDmbT, codes::Standard::kNr5g}) {
    const std::string slug = core::golden::standard_slug(standard);
    std::ofstream file;
    std::ostream* out = &std::cout;
    if (!outdir.empty()) {
      file.open(outdir + "/golden_" + slug + ".txt");
      if (!file) {
        std::cerr << "cannot open " << outdir << "/golden_" << slug
                  << ".txt\n";
        return 2;
      }
      out = &file;
    }
    *out << "# golden vectors v1 — " << to_string(standard)
         << ": per registered mode, one quantised LLR frame (Q5.2 raw "
            "codes,\n"
            "# post-deposit: puncturing/fillers/rate-matching applied) and "
            "the expected hard\n"
            "# decisions of the fixed and float min-sum datapaths (5 "
            "iterations, no early\n"
            "# termination). Regenerate with:\n"
            "#   alist_tool golden --outdir tests/data\n";
    for (const codes::CodeId& id : codes::all_modes(standard)) {
      write_golden_entry(*out, codes::make_code(id), golden_seed(id),
                         ebn0_db);
      ++entries;
    }
    if (standard == codes::Standard::kNr5g) {
      // Rate-matched coverage shared with the checker: E != sendable and
      // filler cases on top of the registered full-transmission modes.
      for (const auto& c : core::golden::nr_rate_matched_cases()) {
        const auto code = codes::make_nr_code(c.rate, c.z,
                                              c.transmitted_bits,
                                              c.filler_bits);
        const std::uint64_t seed = util::substream_seed(
            golden_seed({standard, c.rate, c.z}),
            0xE000'0000ULL ^
                (static_cast<std::uint64_t>(c.transmitted_bits) << 8) ^
                static_cast<std::uint64_t>(c.filler_bits));
        write_golden_entry(*out, code, seed, ebn0_db);
        ++entries;
      }
    }
    if (!outdir.empty())
      std::cerr << "wrote golden_" << slug << ".txt\n";
  }
  std::cerr << "wrote golden vectors for " << entries << " modes\n";
  return 0;
}

// ---- mode listing -----------------------------------------------------------

int do_modes(const util::Args& args) {
  const std::string filter = args.get_or("standard", std::string{});
  util::Table t("registered modes");
  t.header({"standard", "rate", "z", "n", "payload", "scheme"});
  std::size_t count = 0;
  for (const codes::CodeId& id : codes::all_modes()) {
    if (!filter.empty() &&
        id.standard != codes::parse_standard(filter))
      continue;
    const auto code = codes::make_code(id);
    const auto& s = code.scheme();
    // No commas: the scheme cell must survive --csv unquoted.
    std::string scheme = "full codeword";
    if (!s.is_degenerate())
      scheme = "punct " + std::to_string(s.punctured_block_cols) +
               " cols E=" + std::to_string(code.transmitted_bits()) +
               (s.filler_bits ? " F=" + std::to_string(s.filler_bits)
                              : std::string{});
    t.row({to_string(id.standard), to_string(id.rate),
           std::to_string(id.z), std::to_string(code.n()),
           std::to_string(code.payload_bits()), scheme});
    ++count;
  }
  if (args.get_or("csv", false))
    t.print_csv(std::cout);
  else
    t.print(std::cout);
  std::cerr << count << " modes\n";
  return 0;
}

int do_export(const util::Args& args) {
  const codes::Standard standard = codes::parse_standard(
      args.get_or("standard", std::string{"wimax"}));
  codes::Rate rate = codes::supported_rates(standard).front();
  const std::string rate_name = args.get_or("rate", to_string(rate));
  for (codes::Rate r : codes::supported_rates(standard))
    if (to_string(r) == rate_name) rate = r;
  const int z = static_cast<int>(args.get_or(
      "z", (long long)codes::supported_z(standard).back()));

  const auto code = codes::make_code({standard, rate, z});
  std::cerr << "exporting " << code.name() << " (n=" << code.n()
            << ", m=" << code.m() << ", E=" << code.nonzero_blocks()
            << " blocks)\n";
  codes::write_alist(code, std::cout);
  return 0;
}

int do_import(const util::Args& args) {
  if (args.positional().size() < 2) {
    std::cerr << "usage: alist_tool import <file> [--z Z]\n";
    return 2;
  }
  std::ifstream in(args.positional()[1]);
  if (!in) {
    std::cerr << "cannot open " << args.positional()[1] << "\n";
    return 2;
  }
  const codes::FlatCode flat = codes::read_alist(in);

  std::map<std::size_t, int> row_hist, col_hist;
  std::vector<int> col_deg(static_cast<std::size_t>(flat.n), 0);
  long long edges = 0;
  for (const auto& row : flat.vars_of_check) {
    ++row_hist[row.size()];
    edges += static_cast<long long>(row.size());
    for (std::int32_t v : row) ++col_deg[static_cast<std::size_t>(v)];
  }
  for (int d : col_deg) ++col_hist[static_cast<std::size_t>(d)];

  std::cout << "n=" << flat.n << " m=" << flat.m << " edges=" << edges
            << " rate>=" << static_cast<double>(flat.n - flat.m) / flat.n
            << "\nrow degree histogram:";
  for (auto [d, c] : row_hist) std::cout << ' ' << d << "x" << c;
  std::cout << "\ncolumn degree histogram:";
  for (auto [d, c] : col_hist) std::cout << ' ' << d << "x" << c;
  std::cout << "\n";

  if (args.has("z")) {
    const int z = static_cast<int>(args.get_or("z", 0LL));
    try {
      const auto code = codes::to_qc_code(flat, z, "imported");
      std::cout << "QC structure confirmed: j=" << code.block_rows()
                << " k=" << code.block_cols() << " z=" << code.z()
                << " E=" << code.nonzero_blocks() << "\n";
    } catch (const std::exception& e) {
      std::cout << "not quasi-cyclic with z=" << z << ": " << e.what()
                << "\n";
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const util::Args args(argc, argv,
                          {"standard", "rate", "z", "out", "outdir",
                           "ebn0", "csv"});
    if (!args.positional().empty() && args.positional()[0] == "export")
      return do_export(args);
    if (!args.positional().empty() && args.positional()[0] == "import")
      return do_import(args);
    if (!args.positional().empty() && args.positional()[0] == "golden")
      return do_golden(args);
    if (!args.positional().empty() && args.positional()[0] == "modes")
      return do_modes(args);
    std::cerr << "usage: alist_tool export|import|modes|golden [...]\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
