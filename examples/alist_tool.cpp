// alist_tool: export any registered code to MacKay alist format, or
// import an external alist matrix, analyse it, and (optionally) check a
// hard-decision word against it.
//
//   ./alist_tool export --standard wimax --rate 1/2 --z 96 > h2304.alist
//   ./alist_tool import h2304.alist [--z 96]
//
// Import prints the matrix profile (dimensions, degree distributions) and
// attempts QC reconstruction when --z is given, so externally generated
// matrices can be brought into the registry-independent decoding path.
#include <fstream>
#include <iostream>
#include <map>

#include "ldpc/codes/alist.hpp"
#include "ldpc/codes/registry.hpp"
#include "ldpc/util/args.hpp"

using namespace ldpc;

namespace {

int do_export(const util::Args& args) {
  const std::string std_name = args.get_or("standard", std::string{"wimax"});
  const codes::Standard standard =
      std_name == "wlan"
          ? codes::Standard::kWlan80211n
          : (std_name == "dmbt" ? codes::Standard::kDmbT
                                : codes::Standard::kWimax80216e);
  codes::Rate rate = codes::supported_rates(standard).front();
  const std::string rate_name = args.get_or("rate", to_string(rate));
  for (codes::Rate r : codes::supported_rates(standard))
    if (to_string(r) == rate_name) rate = r;
  const int z = static_cast<int>(args.get_or(
      "z", (long long)codes::supported_z(standard).back()));

  const auto code = codes::make_code({standard, rate, z});
  std::cerr << "exporting " << code.name() << " (n=" << code.n()
            << ", m=" << code.m() << ", E=" << code.nonzero_blocks()
            << " blocks)\n";
  codes::write_alist(code, std::cout);
  return 0;
}

int do_import(const util::Args& args) {
  if (args.positional().size() < 2) {
    std::cerr << "usage: alist_tool import <file> [--z Z]\n";
    return 2;
  }
  std::ifstream in(args.positional()[1]);
  if (!in) {
    std::cerr << "cannot open " << args.positional()[1] << "\n";
    return 2;
  }
  const codes::FlatCode flat = codes::read_alist(in);

  std::map<std::size_t, int> row_hist, col_hist;
  std::vector<int> col_deg(static_cast<std::size_t>(flat.n), 0);
  long long edges = 0;
  for (const auto& row : flat.vars_of_check) {
    ++row_hist[row.size()];
    edges += static_cast<long long>(row.size());
    for (std::int32_t v : row) ++col_deg[static_cast<std::size_t>(v)];
  }
  for (int d : col_deg) ++col_hist[static_cast<std::size_t>(d)];

  std::cout << "n=" << flat.n << " m=" << flat.m << " edges=" << edges
            << " rate>=" << static_cast<double>(flat.n - flat.m) / flat.n
            << "\nrow degree histogram:";
  for (auto [d, c] : row_hist) std::cout << ' ' << d << "x" << c;
  std::cout << "\ncolumn degree histogram:";
  for (auto [d, c] : col_hist) std::cout << ' ' << d << "x" << c;
  std::cout << "\n";

  if (args.has("z")) {
    const int z = static_cast<int>(args.get_or("z", 0LL));
    try {
      const auto code = codes::to_qc_code(flat, z, "imported");
      std::cout << "QC structure confirmed: j=" << code.block_rows()
                << " k=" << code.block_cols() << " z=" << code.z()
                << " E=" << code.nonzero_blocks() << "\n";
    } catch (const std::exception& e) {
      std::cout << "not quasi-cyclic with z=" << z << ": " << e.what()
                << "\n";
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const util::Args args(argc, argv, {"standard", "rate", "z"});
    if (!args.positional().empty() && args.positional()[0] == "export")
      return do_export(args);
    if (!args.positional().empty() && args.positional()[0] == "import")
      return do_import(args);
    std::cerr << "usage: alist_tool export|import [...]\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
