// alist_tool: export any registered code to MacKay alist format, import an
// external alist matrix and analyse it, or regenerate the golden-vector
// regression data locked by tests/test_golden.cpp.
//
//   ./alist_tool export --standard wimax --rate 1/2 --z 96 > h2304.alist
//   ./alist_tool import h2304.alist [--z 96]
//   ./alist_tool golden --out tests/data/golden_minsum.txt
//
// Import prints the matrix profile (dimensions, degree distributions) and
// attempts QC reconstruction when --z is given, so externally generated
// matrices can be brought into the registry-independent decoding path.
// Golden writes, for EVERY registered mode, one canned quantised LLR frame
// (a real encode -> BPSK -> AWGN -> demap chain, deterministically seeded)
// plus the expected hard decisions of the fixed-point and float min-sum
// datapaths; the regression suite decodes the frames through the scalar
// fixed, batched-fixed (SoA) and float engines and asserts bit-exactness.
#include <fstream>
#include <iostream>
#include <map>

#include "ldpc/channel/channel.hpp"
#include "ldpc/codes/alist.hpp"
#include "ldpc/codes/registry.hpp"
#include "ldpc/core/golden.hpp"
#include "ldpc/core/layer_engine.hpp"
#include "ldpc/enc/encoder.hpp"
#include "ldpc/util/args.hpp"
#include "ldpc/util/rng.hpp"

using namespace ldpc;

namespace {

// ---- golden-vector regeneration --------------------------------------------
// The decode configuration and bit packing are shared with
// tests/test_golden.cpp through ldpc/core/golden.hpp — one definition of
// the generator/checker contract.

int do_golden(const util::Args& args) {
  std::ofstream file;
  std::ostream* out = &std::cout;
  if (args.has("out")) {
    file.open(*args.get("out"));
    if (!file) {
      std::cerr << "cannot open " << *args.get("out") << "\n";
      return 2;
    }
    out = &file;
  }
  const double ebn0_db = args.get_or("ebn0", 2.0);
  const core::DecoderConfig cfg = core::golden::config();

  *out << "# golden vectors v1: per registered mode, one quantised LLR "
          "frame (Q5.2 raw codes)\n"
          "# and the expected hard decisions of the fixed and float "
          "min-sum datapaths\n"
          "# (5 iterations, no early termination). Regenerate with:\n"
          "#   alist_tool golden --out tests/data/golden_minsum.txt\n";
  for (const codes::CodeId& id : codes::all_modes()) {
    const auto code = codes::make_code(id);
    // Deterministic per-mode seed from the mode identity (stable under
    // registry reordering).
    const std::uint64_t key =
        (static_cast<std::uint64_t>(id.standard) << 40) ^
        (static_cast<std::uint64_t>(id.rate) << 32) ^
        static_cast<std::uint64_t>(id.z);
    util::Xoshiro256 rng(util::substream_seed(0xD1CE'60'1DULL, key));

    std::vector<std::uint8_t> info(static_cast<std::size_t>(code.k_info()));
    enc::random_bits(rng, info);
    const auto cw = enc::make_encoder(code)->encode(info);
    auto mod = channel::modulate(cw, channel::Modulation::kBpsk);
    const double sigma = channel::ebn0_to_sigma(ebn0_db, code.rate(),
                                                channel::Modulation::kBpsk);
    channel::AwgnChannel(sigma).transmit(mod.samples, rng);
    const auto llr = channel::demap_llr(mod, sigma);

    core::LayerEngine fixed_engine(cfg);
    fixed_engine.reconfigure(code);
    std::vector<std::int32_t> raw(llr.size());
    fixed_engine.quantize(llr, raw);
    const auto fixed_result = fixed_engine.run(raw);

    core::FloatLayerEngine float_engine(cfg);
    float_engine.reconfigure(code);
    std::vector<double> deq(raw.size());
    for (std::size_t i = 0; i < raw.size(); ++i)
      deq[i] = raw[i] * cfg.format.lsb();
    const auto float_result = float_engine.run(deq);

    *out << "mode " << to_string(id) << " n " << code.n() << "\nraw";
    for (std::int32_t r : raw) *out << ' ' << r;
    *out << "\nfixed " << core::golden::bits_to_hex(fixed_result.bits)
         << "\nfloat " << core::golden::bits_to_hex(float_result.bits)
         << "\n";
  }
  std::cerr << "wrote golden vectors for " << codes::all_modes().size()
            << " modes\n";
  return 0;
}

int do_export(const util::Args& args) {
  const std::string std_name = args.get_or("standard", std::string{"wimax"});
  const codes::Standard standard =
      std_name == "wlan"
          ? codes::Standard::kWlan80211n
          : (std_name == "dmbt" ? codes::Standard::kDmbT
                                : codes::Standard::kWimax80216e);
  codes::Rate rate = codes::supported_rates(standard).front();
  const std::string rate_name = args.get_or("rate", to_string(rate));
  for (codes::Rate r : codes::supported_rates(standard))
    if (to_string(r) == rate_name) rate = r;
  const int z = static_cast<int>(args.get_or(
      "z", (long long)codes::supported_z(standard).back()));

  const auto code = codes::make_code({standard, rate, z});
  std::cerr << "exporting " << code.name() << " (n=" << code.n()
            << ", m=" << code.m() << ", E=" << code.nonzero_blocks()
            << " blocks)\n";
  codes::write_alist(code, std::cout);
  return 0;
}

int do_import(const util::Args& args) {
  if (args.positional().size() < 2) {
    std::cerr << "usage: alist_tool import <file> [--z Z]\n";
    return 2;
  }
  std::ifstream in(args.positional()[1]);
  if (!in) {
    std::cerr << "cannot open " << args.positional()[1] << "\n";
    return 2;
  }
  const codes::FlatCode flat = codes::read_alist(in);

  std::map<std::size_t, int> row_hist, col_hist;
  std::vector<int> col_deg(static_cast<std::size_t>(flat.n), 0);
  long long edges = 0;
  for (const auto& row : flat.vars_of_check) {
    ++row_hist[row.size()];
    edges += static_cast<long long>(row.size());
    for (std::int32_t v : row) ++col_deg[static_cast<std::size_t>(v)];
  }
  for (int d : col_deg) ++col_hist[static_cast<std::size_t>(d)];

  std::cout << "n=" << flat.n << " m=" << flat.m << " edges=" << edges
            << " rate>=" << static_cast<double>(flat.n - flat.m) / flat.n
            << "\nrow degree histogram:";
  for (auto [d, c] : row_hist) std::cout << ' ' << d << "x" << c;
  std::cout << "\ncolumn degree histogram:";
  for (auto [d, c] : col_hist) std::cout << ' ' << d << "x" << c;
  std::cout << "\n";

  if (args.has("z")) {
    const int z = static_cast<int>(args.get_or("z", 0LL));
    try {
      const auto code = codes::to_qc_code(flat, z, "imported");
      std::cout << "QC structure confirmed: j=" << code.block_rows()
                << " k=" << code.block_cols() << " z=" << code.z()
                << " E=" << code.nonzero_blocks() << "\n";
    } catch (const std::exception& e) {
      std::cout << "not quasi-cyclic with z=" << z << ": " << e.what()
                << "\n";
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const util::Args args(argc, argv,
                          {"standard", "rate", "z", "out", "ebn0"});
    if (!args.positional().empty() && args.positional()[0] == "export")
      return do_export(args);
    if (!args.positional().empty() && args.positional()[0] == "import")
      return do_import(args);
    if (!args.positional().empty() && args.positional()[0] == "golden")
      return do_golden(args);
    std::cerr << "usage: alist_tool export|import|golden [...]\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
