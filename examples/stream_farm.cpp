// The streaming decoder farm: mixed-standard traffic across N chips.
//
// Scales the multi-standard story from one reconfigurable chip to a farm:
// a TrafficSource generates an interleaved 4-standard job stream
// (802.16e + 802.11n + DMB-T + 5G NR) and the StreamScheduler dispatches
// it across N DecoderChip+FramePipeline workers, FIFO versus the
// reconfiguration-cost-aware binned policy. The run prints the aggregate
// payload throughput, per-worker occupancy and ledgers, the
// reconfiguration count and the latency distribution — the serving-layer
// numbers the scheduler policy is judged on, all in modeled chip cycles.
//
// The run then replays the SAME jobs through the live wall-clock
// DecodeService (N real worker threads, each owning a SIMD stream engine)
// and checks the live per-frame decision hashes against the modeled
// farm's — the modeled-vs-live determinism contract, demonstrated end to
// end.
//
//   ./stream_farm [--jobs 64] [--workers 3] [--seed 1] [--gap 400]
//                 [--burst 8] [--delay 150000] [--snr 3.0]
#include <iostream>
#include <vector>

#include "ldpc/codes/registry.hpp"
#include "ldpc/stream/decode_service.hpp"
#include "ldpc/stream/scheduler.hpp"
#include "ldpc/util/args.hpp"
#include "ldpc/util/table.hpp"

using namespace ldpc;

namespace {

stream::TrafficSource make_source(std::uint64_t seed, double gap,
                                  double snr) {
  stream::TrafficSource source(
      {.seed = seed, .mean_interarrival_cycles = gap});
  source.add_mode(
      codes::make_code({codes::Standard::kWimax80216e, codes::Rate::kR12, 96}),
      snr, 2.0);
  source.add_mode(
      codes::make_code({codes::Standard::kWlan80211n, codes::Rate::kR34, 81}),
      snr + 1.5, 1.0);
  source.add_mode(
      codes::make_code({codes::Standard::kDmbT, codes::Rate::kR25, 127}),
      snr + 1.0, 1.0);
  source.add_mode(codes::make_nr_code(codes::Rate::kR13, 96, 5000, 64), snr,
                  1.0);
  return source;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(
      argc, argv, {"jobs", "workers", "seed", "gap", "burst", "delay",
                   "snr"});
  const auto jobs = args.get_or("jobs", 64LL);
  const auto workers = static_cast<int>(args.get_or("workers", 3LL));
  const auto seed = static_cast<std::uint64_t>(args.get_or("seed", 1LL));
  const double gap = args.get_or("gap", 400.0);
  const double snr = args.get_or("snr", 3.0);
  const auto burst = static_cast<int>(args.get_or("burst", 8LL));
  const auto delay = args.get_or("delay", 150'000LL);
  if (jobs <= 0 || workers <= 0 || burst <= 0 || delay < 0) {
    std::cerr << "error: --jobs, --workers and --burst must be positive "
                 "and --delay non-negative\n";
    return 2;
  }

  stream::SchedulerConfig config;
  config.workers = workers;
  config.max_burst = burst;
  config.max_bin_delay_cycles = delay;
  // Min-sum explicitly: the live DecodeService below runs the quantized
  // stream engines, and the modeled farm must decode the same arithmetic
  // for the hash comparison to be meaningful.
  config.decoder = {.max_iterations = 10,
                    .kernel = core::CnuKernel::kMinSum,
                    .early_termination = {.enabled = true,
                                          .threshold_raw = 8}};

  std::cout << "dispatching " << jobs << " mixed 4-standard jobs across "
            << workers << " chips (mean inter-arrival "
            << util::fmt_fixed(gap, 0) << " cycles)...\n\n";

  util::Table policy_table("policy comparison (same seeded traffic)");
  policy_table.header({"policy", "payload Mbps", "reconfigs",
                       "p50 latency", "p99 latency", "makespan"});
  stream::StreamReport modeled;  // kept for the live comparison below
  for (const auto policy :
       {stream::Policy::kFifo, stream::Policy::kBinned}) {
    auto source = make_source(seed, gap, snr);
    config.policy = policy;
    stream::StreamScheduler scheduler(source, config);
    const auto report = scheduler.run(jobs);
    if (policy == stream::Policy::kBinned) modeled = report;
    policy_table.row(
        {to_string(policy),
         util::fmt_fixed(report.aggregate_payload_bps(450e6) / 1e6, 1),
         std::to_string(report.totals.reconfigurations),
         util::fmt_group(report.latency_percentile(50.0)),
         util::fmt_group(report.latency_percentile(99.0)),
         util::fmt_group(report.makespan_cycles)});

    if (policy == stream::Policy::kBinned) {
      util::Table per_worker("per-chip ledgers (binned policy)");
      per_worker.header({"chip", "frames", "reconfigs", "decode cycles",
                         "stall cycles", "occupancy", "payload bits"});
      for (int w = 0; w < workers; ++w) {
        const auto& ledger =
            report.worker_ledgers[static_cast<std::size_t>(w)];
        per_worker.row(
            {std::to_string(w), std::to_string(ledger.frames),
             std::to_string(ledger.reconfigurations),
             util::fmt_group(ledger.decode_cycles),
             util::fmt_group(ledger.stall_cycles),
             util::fmt_fixed(report.worker_occupancy(w) * 100.0, 1) + "%",
             util::fmt_group(ledger.payload_bits)});
      }
      policy_table.print(std::cout);
      std::cout << '\n';
      per_worker.print(std::cout);
      long long ledger_payload = 0;
      for (const auto& ledger : report.worker_ledgers)
        ledger_payload += ledger.payload_bits;
      std::cout << "\npayload conservation: "
                << util::fmt_group(report.total_payload_bits)
                << " bits generated == "
                << util::fmt_group(ledger_payload)
                << " bits across chip ledgers ("
                << (ledger_payload == report.total_payload_bits ? "ok"
                                                                : "VIOLATED")
                << ")\n";
    }
  }
  std::cout << "\nthe binned policy trades a bounded amount of queueing "
               "delay (--delay) for strictly fewer reconfigurations; both "
               "policies decode bit-identical frames (the scheduler only "
               "moves work in time).\n";

  // ---- the live service: same jobs, real threads, wall clock ------------
  // Pre-synthesize the identical counter-seeded frames (the submitter
  // owns synthesis; TrafficSource::make_frame is not thread-safe), run
  // them through N live worker threads, and check every hard-decision
  // hash against the modeled farm's.
  auto live_source = make_source(seed, gap, snr);
  std::vector<stream::Job> live_jobs;
  std::vector<stream::JobFrame> live_frames;
  for (long long i = 0; i < jobs; ++i) {
    live_jobs.push_back(live_source.next());
    live_frames.push_back(live_source.make_frame(live_jobs.back()));
  }

  stream::ServiceConfig service_config;
  service_config.workers = workers;
  service_config.queue_capacity = static_cast<std::size_t>(workers) * 128;
  service_config.decoder = config.decoder;
  stream::DecodeService service(live_source, service_config);
  for (std::size_t i = 0; i < live_jobs.size(); ++i) {
    stream::ServiceRequest req;
    req.id = live_jobs[i].id;
    req.mode = live_jobs[i].mode;
    req.llrs = live_frames[i].llrs;
    service.submit(std::move(req));
  }
  const auto live = service.finish();

  long long steals = 0;
  for (const auto s : live.worker_steals) steals += s;
  util::Table live_table("live decode service (" + std::to_string(workers) +
                         " worker threads, wall clock)");
  live_table.header({"wall kframes/s", "p50 us", "p99 us", "steals",
                     "reconfigs"});
  live_table.row({util::fmt_fixed(live.wall_frames_per_sec() / 1e3, 1),
                  util::fmt_group(live.wall_latency_percentile_ns(50.0) /
                                  1000),
                  util::fmt_group(live.wall_latency_percentile_ns(99.0) /
                                  1000),
                  std::to_string(steals),
                  std::to_string(live.totals.reconfigurations)});
  std::cout << '\n';
  live_table.print(std::cout);

  bool identical = live.jobs.size() == modeled.jobs.size();
  for (std::size_t i = 0; identical && i < live.jobs.size(); ++i)
    identical = live.jobs[i].decision_hash == modeled.jobs[i].decision_hash &&
                live.jobs[i].iterations == modeled.jobs[i].iterations;
  std::cout << "\nmodeled vs live determinism: per-frame decision hashes "
            << (identical ? "MATCH" : "DIVERGE")
            << " — thread interleaving moves work in time, never changes "
               "the arithmetic.\n";
  return identical ? 0 : 1;
}
