// BER/FER curve tool: sweep Eb/N0 for any registered mode and decoder.
//
//   ./ber_sweep --standard wimax|wlan|dmbt|nr --rate 1/2 --z 96
//               --from 1.0 --to 3.0 --step 0.5
//               --decoder fixed|minsum|batched|floatengine|float|flooding
//               [--qbits 8 --qfrac 2] [--iters 10] [--frames 100]
//               [--threads 0] [--csv]
//
// fixed/minsum run the quantised engine datapath (word length via
// --qbits/--qfrac, default the paper's Q5.2); batched is min-sum through
// the SIMD-batched SoA kernel (bit-identical statistics, faster);
// floatengine is the SAME engine instantiated over double (the
// quantization-loss reference); float/flooding are the independent
// baseline decoders.
//
// Prints BER, FER and average iterations per point; --csv emits a
// plot-ready table. Frames are decoded by a pool of worker threads
// (--threads 0 = one per hardware thread), each owning a private decoder;
// the counter-seeded simulation engine makes the numbers bit-identical for
// any thread count.
#include <iostream>
#include <memory>

#include "ldpc/baseline/flooding_bp.hpp"
#include "ldpc/baseline/layered_bp.hpp"
#include "ldpc/codes/registry.hpp"
#include "ldpc/sim/simulator.hpp"
#include "ldpc/util/args.hpp"
#include "ldpc/util/table.hpp"

using namespace ldpc;

namespace {

codes::Rate parse_rate(const std::string& s, codes::Standard standard) {
  for (codes::Rate r : codes::supported_rates(standard))
    if (to_string(r) == s) return r;
  throw std::invalid_argument("unsupported rate '" + s + "' for " +
                              to_string(standard));
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const util::Args args(argc, argv,
                          {"standard", "rate", "z", "from", "to", "step",
                           "decoder", "iters", "frames", "csv", "seed",
                           "threads", "qbits", "qfrac"});
    const codes::Standard standard = codes::parse_standard(
        args.get_or("standard", std::string{"wimax"}));
    // Default rate: the standard's first supported one (1/2 for WiMax,
    // 1/3 = BG1 for NR).
    const codes::Rate rate = parse_rate(
        args.get_or("rate", to_string(codes::supported_rates(standard)
                                          .front())),
        standard);
    const int z = static_cast<int>(args.get_or(
        "z", (long long)codes::supported_z(standard).back()));
    const int iters = static_cast<int>(args.get_or("iters", 10LL));
    const int frames = static_cast<int>(args.get_or("frames", 100LL));
    const std::string dec_name =
        args.get_or("decoder", std::string{"fixed"});

    const auto code = codes::make_code({standard, rate, z});

    const fixed::QFormat format(
        static_cast<int>(args.get_or("qbits", 8LL)),
        static_cast<int>(args.get_or("qfrac", 2LL)));

    // Decoder zoo: each worker thread builds its own instance from the
    // factory (the decoders are not thread-safe). `batched` uses the
    // batched factory instead (SoA min-sum kernel, kLanes frames per
    // claim) — statistics identical to `minsum`.
    sim::DecoderFactory factory;
    sim::BatchDecoderFactory batch_factory;
    if (dec_name == "fixed")
      factory = sim::fixed_decoder_factory(code,
                                           {.format = format,
                                            .max_iterations = iters,
                                            .stop_on_codeword = true});
    else if (dec_name == "minsum")
      factory = sim::fixed_decoder_factory(
          code, {.format = format,
                 .max_iterations = iters,
                 .kernel = core::CnuKernel::kMinSum,
                 .stop_on_codeword = true});
    else if (dec_name == "batched")
      batch_factory = sim::batched_fixed_decoder_factory(
          code, {.format = format,
                 .max_iterations = iters,
                 .kernel = core::CnuKernel::kMinSum,
                 .stop_on_codeword = true});
    else if (dec_name == "floatengine")
      factory = sim::fixed_decoder_factory(
          code, {.format = format,
                 .max_iterations = iters,
                 .stop_on_codeword = true,
                 .datapath = core::Datapath::kFloat});
    else if (dec_name == "float")
      factory = sim::baseline_decoder_factory(
          [&code]() { return std::make_unique<baseline::LayeredBP>(code); },
          iters);
    else if (dec_name == "flooding")
      factory = sim::baseline_decoder_factory(
          [&code]() { return std::make_unique<baseline::FloodingBP>(code); },
          iters);
    else
      throw std::invalid_argument("unknown decoder '" + dec_name + "'");

    sim::SimConfig sc;
    sc.seed = static_cast<std::uint64_t>(args.get_or("seed", 1LL));
    sc.min_frames = frames;
    sc.max_frames = frames * 8;
    sc.target_frame_errors = 30;
    sc.threads = static_cast<int>(args.get_or("threads", 0LL));
    sim::Simulator sim = batch_factory
                             ? sim::Simulator(code, batch_factory, sc)
                             : sim::Simulator(code, factory, sc);

    const double from = args.get_or("from", 1.0);
    const double to = args.get_or("to", 3.0);
    const double step = args.get_or("step", 0.5);
    if (step <= 0 || to < from)
      throw std::invalid_argument("bad sweep range");

    util::Table t(code.name() + " — " + dec_name + " decoder, " +
                  std::to_string(iters) + " iterations, " +
                  std::to_string(sim.threads()) + " worker thread(s)");
    t.header({"Eb/N0 dB", "BER", "FER", "avg iter", "frames"});
    for (double db = from; db <= to + 1e-9; db += step) {
      const auto p = sim.run_point(db);
      t.row({util::fmt_fixed(db, 2), util::fmt_sci(p.ber()),
             util::fmt_sci(p.fer()),
             util::fmt_fixed(p.avg_iterations(), 2),
             std::to_string(p.frames)});
    }
    if (args.get_or("csv", false))
      t.print_csv(std::cout);
    else
      t.print(std::cout);
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
