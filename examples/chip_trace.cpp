// Chip trace: a look inside the structural decoder model.
//
//   ./chip_trace [--standard wimax|wlan] [--z 24] [--snr 4.0]
//
// Decodes one frame on the DecoderChip and prints the architectural
// telemetry the cycle model exposes: the optimised layer schedule with
// per-layer stage cycles and stalls, memory access totals, shifter
// configuration and the resulting cycle count vs the closed-form
// throughput formula.
#include <iostream>

#include "ldpc/arch/decoder_chip.hpp"
#include "ldpc/arch/throughput.hpp"
#include "ldpc/channel/channel.hpp"
#include "ldpc/codes/registry.hpp"
#include "ldpc/enc/encoder.hpp"
#include "ldpc/util/args.hpp"
#include "ldpc/util/table.hpp"

using namespace ldpc;

int main(int argc, char** argv) {
  const util::Args args(argc, argv, {"standard", "z", "snr", "seed"});
  const std::string std_name = args.get_or("standard", std::string{"wimax"});
  const auto standard = std_name == "wlan" ? codes::Standard::kWlan80211n
                                           : codes::Standard::kWimax80216e;
  const int z = static_cast<int>(args.get_or(
      "z", (long long)codes::supported_z(standard).front()));
  const double snr = args.get_or("snr", 4.0);
  util::Xoshiro256 rng(
      static_cast<std::uint64_t>(args.get_or("seed", 3LL)));

  const auto code = codes::make_code({standard, codes::Rate::kR12, z});
  arch::DecoderChip chip({}, {.max_iterations = 10,
                              .stop_on_codeword = true});
  chip.configure(code);

  const auto encoder = enc::make_encoder(code);
  std::vector<std::uint8_t> info(static_cast<std::size_t>(code.k_info()));
  enc::random_bits(rng, info);
  const auto cw = encoder->encode(info);
  auto frame = channel::modulate(cw, channel::Modulation::kBpsk);
  const double sigma = channel::ebn0_to_sigma(snr, code.rate(),
                                              channel::Modulation::kBpsk);
  channel::AwgnChannel(sigma).transmit(frame.samples, rng);
  const auto r = chip.decode(channel::demap_llr(frame, sigma));

  std::cout << "=== " << code.name() << " on the paper chip (z_max=96) ===\n";
  std::cout << "layer schedule (optimised):";
  for (int l : chip.layer_order()) std::cout << ' ' << l;
  std::cout << "\n\n";

  arch::PipelineModel pipe(code, {.include_shifter_latency = true});
  const auto timing = pipe.analyze(chip.layer_order());
  util::Table sched("per-layer pipeline timing (R4 SISO)");
  sched.header({"slot", "layer", "row degree", "stage cycles", "stall"});
  for (std::size_t i = 0; i < timing.schedule.size(); ++i) {
    const auto& lt = timing.schedule[i];
    sched.row({std::to_string(i), std::to_string(lt.layer),
               std::to_string(code.layers()[lt.layer].size()),
               std::to_string(lt.stage_cycles),
               std::to_string(lt.stall)});
  }
  sched.print(std::cout);

  std::cout << "\ndecode: iterations=" << r.functional.iterations
            << " converged=" << (r.functional.converged ? "yes" : "no")
            << " cycles=" << r.stats.cycles << "\n";
  std::cout << "memory: L-mem " << r.stats.l_mem_reads << "r/"
            << r.stats.l_mem_writes << "w, Lambda banks "
            << r.stats.lambda_reads << "r/" << r.stats.lambda_writes
            << "w across " << r.stats.active_sisos << " active banks ("
            << r.stats.idle_sisos << " gated)\n";

  const double formula =
      arch::formula_throughput(code, core::Radix::kR4, 450e6, 10);
  const double modeled = code.k_info() * 450e6 /
                         static_cast<double>(
                             timing.cycles_per_iteration * 10 +
                             timing.drain_cycles);
  std::cout << "throughput @450 MHz, 10 iter: formula "
            << util::fmt_fixed(formula / 1e6, 0) << " Mbps, cycle model "
            << util::fmt_fixed(modeled / 1e6, 0) << " Mbps ("
            << util::fmt_fixed((1 - modeled / formula) * 100, 1)
            << "% degradation from stalls + shifter)\n";
  return 0;
}
